package chaos

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"repro/internal/apps"
)

// Strategy selects how a Frontier generates candidates.
type Strategy string

const (
	// StrategyGuided mutates corpus entries under coverage feedback —
	// the AFL-style loop Search runs.
	StrategyGuided Strategy = "guided"
	// StrategyRandom replays the matrix's seeded single-scenario
	// generation at the same budget — the RandomSearch baseline.
	StrategyRandom Strategy = "random"
)

// Candidate is one schedule emitted by a Frontier, tagged with its global
// execution index (the admission order) and the operator that produced it.
// The parent corpus index stays private: it only feeds the frontier's own
// novelty accounting when the candidate is admitted back.
type Candidate struct {
	Index    int
	Schedule Schedule
	Op       string
	parent   int // corpus index mutated, -1 for seeds and random candidates
}

// ShrinkFunc minimizes one failing candidate into a SearchFailure. The
// frontier invokes it exactly once per distinct violation signature, in
// admission order, so any deterministic implementation — the in-process
// LocalShrinker or a fleet coordinator leasing the job to a remote worker —
// yields byte-identical reports.
type ShrinkFunc func(sched Schedule, res *RunResult) *SearchFailure

// LocalShrinker returns the in-process shrink delegate: delta-debug the
// failing schedule on the given runner (a negative budget skips shrinking)
// and capture the replayable artifact. Search uses it directly; fleet
// workers run the identical code for shrink leases, which is what makes a
// remotely shrunk artifact byte-identical to a locally shrunk one.
func LocalShrinker(runner Runner, budget int) ShrinkFunc {
	return func(sched Schedule, r *RunResult) *SearchFailure {
		if budget < 0 {
			return &SearchFailure{
				Schedule: sched, Violations: r.Violations, Shrunk: sched,
				Artifact: NewArtifact(runner, sched, r),
			}
		}
		fails := func(s Schedule) bool {
			return len(runner.Run(s).Violations) > 0
		}
		sr := Shrink(sched, fails, budget)
		shrunkRes := runner.Run(sr.Schedule)
		return &SearchFailure{
			Schedule:   sched,
			Violations: r.Violations,
			Shrunk:     sr.Schedule,
			ShrinkRuns: sr.Runs,
			Minimal:    sr.Minimal,
			Artifact:   NewArtifact(runner, sr.Schedule, shrunkRes),
		}
	}
}

// Frontier is the seeded candidate stream plus corpus-admission state one
// application's search advances through. It is the single implementation
// behind Search, RandomSearch and the fleet coordinator: candidates are
// generated in batches from one seeded rng, evaluation happens elsewhere
// (a local worker pool or remote fleet workers — the frontier never runs a
// schedule itself except through its shrink delegate), and results are fed
// back with Admit in candidate order. Because every random draw happens
// inside NextBatch and admission is sequential, the trajectory — and the
// final AppSearch — depends only on (spec, cfg, strategy), never on who
// evaluated the candidates or how fast.
//
// The protocol is strict: call NextBatch, Admit every returned candidate in
// index order, repeat until NextBatch returns an empty batch, then Finish.
type Frontier struct {
	strategy  Strategy
	cfg       SearchConfig
	spec      apps.AppSpec
	runner    Runner
	procs     []string
	crashable []int
	shrink    ShrinkFunc

	res       *AppSearch
	seenShape map[string]bool
	seenDig   map[string]bool
	failSeen  map[string]bool

	// guided-only stream state
	rng      *rand.Rand
	tried    map[string]bool
	opCredit map[string]int
	seeded   bool

	issued int // candidates handed out so far; equals the next global index
}

// NewFrontier builds the candidate stream for one application.
// cfg.Workers is ignored here — evaluation parallelism belongs to whoever
// drives the frontier.
func NewFrontier(spec apps.AppSpec, cfg SearchConfig, strategy Strategy) *Frontier {
	cfg = cfg.withDefaults()
	f := &Frontier{
		strategy: strategy,
		cfg:      cfg,
		spec:     spec,
		runner: Runner{Spec: spec, Buggy: cfg.Buggy, Seed: cfg.Seed, Probe: true,
			CheckEvery: cfg.CheckEvery, Baseline: cfg.Baseline},
		res:       &AppSearch{App: spec.Name},
		seenShape: make(map[string]bool),
		seenDig:   make(map[string]bool),
		failSeen:  make(map[string]bool),
	}
	f.procs = f.runner.Procs()
	f.crashable = f.runner.Crashable()
	f.shrink = LocalShrinker(f.runner, cfg.ShrinkBudget)
	if strategy == StrategyGuided {
		f.rng = searchRng(cfg.Seed, spec.Name)
		f.tried = make(map[string]bool)
		f.opCredit = make(map[string]int, len(MutationOps))
		for _, op := range MutationOps {
			f.opCredit[op] = 1
		}
	}
	return f
}

// Runner returns the runner candidates must be evaluated on. A remote
// evaluator reconstructs an identical one from the lease parameters (app,
// buggy, seed, probe, check-every); byte-identity of the whole report
// depends on that match.
func (f *Frontier) Runner() Runner { return f.runner }

// SetShrinker replaces the shrink delegate (default: LocalShrinker on this
// frontier's runner). The fleet coordinator installs a delegate that leases
// the job to a worker.
func (f *Frontier) SetShrinker(fn ShrinkFunc) { f.shrink = fn }

// Budget returns the configured per-application execution budget.
func (f *Frontier) Budget() int { return f.cfg.Budget }

// Corpus exposes the admitted corpus so far. The returned slice is the
// frontier's own — callers must not mutate it; the fleet coordinator reads
// it to journal entries as they are admitted.
func (f *Frontier) Corpus() []CorpusEntry { return f.res.Corpus }

// mark dedups candidates by canonical JSON: re-running a schedule the
// search already evaluated can never reach new coverage, so duplicate
// mutants are regenerated instead of burning budget.
func (f *Frontier) mark(s Schedule) bool {
	key, _ := json.Marshal(s)
	if f.tried[string(key)] {
		return false
	}
	f.tried[string(key)] = true
	return true
}

// NextBatch generates the next candidate batch. It must only be called
// once every candidate of the previous batch has been admitted — corpus
// state steers generation. An empty batch means the budget is exhausted.
func (f *Frontier) NextBatch() []Candidate {
	if f.strategy == StrategyRandom {
		return f.nextRandom()
	}
	if !f.seeded {
		return f.seedBatch()
	}
	if f.res.Executions >= f.cfg.Budget {
		return nil
	}
	n := min(searchBatch, f.cfg.Budget-f.res.Executions)
	batch := make([]Candidate, 0, n)
	for len(batch) < n {
		var cand Schedule
		var pi int
		op := ""
		for try := 0; try < 8; try++ { // retry duplicate mutants, bounded
			pi = pickParent(f.rng, f.res.Corpus)
			parent := f.res.Corpus[pi].Schedule
			donor := f.res.Corpus[f.rng.Intn(len(f.res.Corpus))].Schedule
			op = PickOp(f.rng, f.opCredit, parent, donor)
			cand = MutateOp(f.rng, op, parent, donor, f.procs, f.crashable, f.spec.Horizon)
			if f.mark(cand) {
				break
			}
		}
		batch = append(batch, Candidate{Index: f.issued + len(batch), Schedule: cand, Op: op, parent: pi})
	}
	f.issued += len(batch)
	return batch
}

// seedBatch emits the guided search's opening batch: the fault-free
// baseline plus one generated scenario per matrix kind — the exact cells
// the random matrix would start from.
func (f *Frontier) seedBatch() []Candidate {
	f.seeded = true
	var batch []Candidate
	add := func(s Schedule, op string) {
		if f.res.Executions+len(batch) < f.cfg.Budget && f.mark(s) {
			batch = append(batch, Candidate{Index: f.issued + len(batch), Schedule: s, Op: op, parent: -1})
		}
	}
	add(nil, "seed:baseline")
	for _, kind := range MatrixKinds {
		add(Schedule{Generate(kind, f.procs, f.crashable, f.spec.Horizon, f.cfg.Seed)}.Normalize(),
			"seed:"+kind.String())
	}
	// Opt-in kinds come after the matrix seeds so an empty ExtraKinds leaves
	// the stream — and every pinned fixture — byte-identical.
	for _, kind := range f.cfg.ExtraKinds {
		add(Schedule{Generate(kind, f.procs, f.crashable, f.spec.Horizon, f.cfg.Seed)}.Normalize(),
			"seed:"+kind.String())
	}
	f.issued += len(batch)
	return batch
}

// nextRandom emits the matrix's seeded generation at the same budget:
// seeds cfg.Seed, cfg.Seed+1, ... sweep the fault kinds in matrix order.
func (f *Frontier) nextRandom() []Candidate {
	done := f.res.Executions
	if done >= f.cfg.Budget {
		return nil
	}
	n := min(searchBatch, f.cfg.Budget-done)
	batch := make([]Candidate, 0, n)
	for len(batch) < n {
		i := done + len(batch) // global candidate index: kinds × seeds in matrix order
		kind := MatrixKinds[i%len(MatrixKinds)]
		seed := f.cfg.Seed + int64(i/len(MatrixKinds))
		batch = append(batch, Candidate{
			Index:    i,
			Schedule: Schedule{Generate(kind, f.procs, f.crashable, f.spec.Horizon, seed)}.Normalize(),
			Op:       "random:" + kind.String(),
			parent:   -1,
		})
	}
	f.issued += len(batch)
	return batch
}

// Admit feeds one evaluated candidate back, in candidate-index order:
// fingerprint bookkeeping, corpus admission on a new shape, failure capture
// through the shrink delegate, and — for the guided strategy — the adaptive
// operator-credit and parent-novelty updates that steer the next batch.
func (f *Frontier) Admit(c Candidate, r *RunResult) {
	if f.strategy != StrategyGuided {
		f.admit(c.Schedule, c.Op, r)
		return
	}
	before := len(f.res.Corpus)
	dupDigest := f.seenDig[r.Digest]
	f.admit(c.Schedule, c.Op, r)
	switch {
	case len(f.res.Corpus) > before: // admitted: credit op and parent
		f.opCredit[c.Op]++
		if c.parent >= 0 {
			f.res.Corpus[c.parent].Novelty++
		}
	case dupDigest: // behavioral no-op: back off this operator
		f.opCredit[c.Op] = max(1, f.opCredit[c.Op]-1)
	}
}

// admit is the strategy-independent half of Admit.
func (f *Frontier) admit(sched Schedule, op string, r *RunResult) {
	res := f.res
	res.Executions++
	f.seenDig[r.Digest] = true
	res.DistinctDigests = len(f.seenDig)
	if !f.seenShape[r.Shape] {
		f.seenShape[r.Shape] = true
		res.Corpus = append(res.Corpus, CorpusEntry{
			Schedule:    sched,
			Fingerprint: Fingerprint{Digest: r.Digest, Shape: r.Shape},
			FoundAt:     res.Executions,
			Op:          op,
		})
	}
	res.DistinctShapes = len(f.seenShape)
	if n := len(res.Corpus); n > 0 && res.Corpus[n-1].FoundAt == res.Executions {
		res.Growth = append(res.Growth, GrowthPoint{
			Execs: res.Executions, Corpus: n,
			Shapes: res.DistinctShapes, Digests: res.DistinctDigests,
		})
	}

	if len(r.Violations) == 0 {
		return
	}
	sig := strings.Join(r.Violations, "|")
	if f.failSeen[sig] {
		return
	}
	f.failSeen[sig] = true
	fail := f.shrink(sched, r)
	res.ShrinkRuns += fail.ShrinkRuns
	res.Failures = append(res.Failures, fail)
}

// Finish closes the growth curve with a final sample and returns the
// application's search outcome.
func (f *Frontier) Finish() *AppSearch {
	res := f.res
	if n := len(res.Growth); n == 0 || res.Growth[n-1].Execs != res.Executions {
		res.Growth = append(res.Growth, GrowthPoint{
			Execs: res.Executions, Corpus: len(res.Corpus),
			Shapes: res.DistinctShapes, Digests: res.DistinctDigests,
		})
	}
	return res
}

// searchRng derives the per-app mutation rng from the master seed and the
// application name, so adding an app to the sweep never perturbs another
// app's search trajectory.
func searchRng(seed int64, app string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "search|%s", app)
	return rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
}

// pickParent selects the index of the corpus entry to mutate: half the
// time one of the most recent admissions (the AFL "favor the frontier"
// heuristic), half the time weighted by how much novelty an entry's
// mutants have produced so far.
func pickParent(rng *rand.Rand, corpus []CorpusEntry) int {
	if len(corpus) <= 1 {
		return 0
	}
	if recent := min(4, len(corpus)); rng.Intn(2) == 0 {
		return len(corpus) - 1 - rng.Intn(recent)
	}
	total := 0
	for i := range corpus {
		total += 1 + corpus[i].Novelty
	}
	pick := rng.Intn(total)
	for i := range corpus {
		w := 1 + corpus[i].Novelty
		if pick < w {
			return i
		}
		pick -= w
	}
	return len(corpus) - 1
}
