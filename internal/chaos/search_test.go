package chaos

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/apps"
)

// fastApps returns the registry minus tokenring, whose seeded-bug variant
// saturates the step bound under chaos and costs ~1s per execution —
// three orders of magnitude above every other workload.
func fastApps() []apps.AppSpec { return apps.RegistryExcept("tokenring") }

func appByName(t *testing.T, name string) apps.AppSpec {
	t.Helper()
	s, err := apps.Lookup(name) // registry first, then the scenario zoo
	if err != nil {
		t.Fatalf("%s not registered", name)
	}
	return s
}

func marshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSearchMatrixDeterminismProperty is the determinism property over 50
// seeds: RunMatrix and Search with identical configuration produce
// byte-identical JSON reports across two executions — the worker pool and
// the corpus admission order leak nothing into the result.
func TestSearchMatrixDeterminismProperty(t *testing.T) {
	reg := apps.Registry()
	for i := 0; i < 50; i++ {
		seed := int64(i + 1)
		spec := reg[i%len(reg)]
		buggy := i%2 == 1 && spec.Name != "tokenring" // buggy tokenring is ~1s/run

		mcfg := MatrixConfig{
			Apps:    []apps.AppSpec{spec},
			Kinds:   MatrixKinds[i%len(MatrixKinds) : i%len(MatrixKinds)+1],
			Seeds:   []int64{seed},
			Workers: 1 + i%4,
		}
		if m1, m2 := marshal(t, RunMatrix(mcfg)), marshal(t, RunMatrix(mcfg)); !bytes.Equal(m1, m2) {
			t.Fatalf("seed %d: RunMatrix reports differ across runs", seed)
		}

		scfg := SearchConfig{
			Apps: []apps.AppSpec{spec}, Buggy: buggy, Seed: seed,
			Budget: 8, Workers: 1 + i%4, ShrinkBudget: 30,
		}
		if s1, s2 := marshal(t, Search(scfg)), marshal(t, Search(scfg)); !bytes.Equal(s1, s2) {
			t.Fatalf("seed %d: Search reports differ across runs", seed)
		}
	}
}

// TestSearchWorkerIndependence: the report is byte-identical for any
// worker count — candidates are generated before evaluation and admitted
// in generation order, so parallelism never steers the search.
func TestSearchWorkerIndependence(t *testing.T) {
	base := SearchConfig{Apps: []apps.AppSpec{appByName(t, "bank")}, Seed: 3, Budget: 24}
	want := marshal(t, Search(base))
	for _, workers := range []int{2, 4, 16} {
		cfg := base
		cfg.Workers = workers
		if got := marshal(t, Search(cfg)); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: report differs from sequential", workers)
		}
	}
}

// TestSearchCorpusAdmission checks the corpus contract: every entry
// reached a distinct event shape, admission indices are strictly
// increasing, schedules are stored normalized, and the growth curve is
// monotone and ends at the final execution count.
func TestSearchCorpusAdmission(t *testing.T) {
	rep := Search(SearchConfig{Apps: []apps.AppSpec{appByName(t, "kvstore")}, Seed: 2, Budget: 32})
	app := rep.Apps[0]
	if app.Executions != 32 {
		t.Fatalf("executions = %d, want 32", app.Executions)
	}
	if len(app.Corpus) < 2 {
		t.Fatalf("corpus = %d entries, want at least baseline + one more", len(app.Corpus))
	}
	shapes := map[string]bool{}
	last := 0
	for _, e := range app.Corpus {
		if shapes[e.Fingerprint.Shape] {
			t.Errorf("duplicate shape admitted: %s", e.Fingerprint.Shape)
		}
		shapes[e.Fingerprint.Shape] = true
		if e.FoundAt <= last {
			t.Errorf("admission order broke: FoundAt %d after %d", e.FoundAt, last)
		}
		last = e.FoundAt
		if norm := marshal(t, e.Schedule.Normalize()); !bytes.Equal(norm, marshal(t, e.Schedule)) {
			t.Errorf("corpus entry not normalized: %s", e.Schedule)
		}
	}
	if app.DistinctShapes != len(app.Corpus) {
		t.Errorf("DistinctShapes = %d, corpus = %d (must match: admission is shape-keyed)",
			app.DistinctShapes, len(app.Corpus))
	}
	if n := len(app.Growth); n == 0 || app.Growth[n-1].Execs != app.Executions {
		t.Errorf("growth curve does not end at the final execution: %+v", app.Growth)
	}
	for i := 1; i < len(app.Growth); i++ {
		a, b := app.Growth[i-1], app.Growth[i]
		if b.Execs < a.Execs || b.Corpus < a.Corpus || b.Shapes < a.Shapes || b.Digests < a.Digests {
			t.Errorf("growth curve not monotone at %d: %+v -> %+v", i, a, b)
		}
	}
}

// TestGuidedBeatsRandom is the headline claim at the E10 operating point:
// at an equal execution budget on the seeded-bug applications, guided
// search reaches strictly more distinct event-shape fingerprints than the
// matrix's blind seeded sampling.
func TestGuidedBeatsRandom(t *testing.T) {
	cfg := SearchConfig{Apps: fastApps(), Buggy: true, Seed: 1, Budget: 96,
		Workers: 4, ShrinkBudget: -1}
	guided := Search(cfg)
	random := RandomSearch(cfg)
	gs, _ := guided.Totals()
	rs, _ := random.Totals()
	if gs <= rs {
		t.Errorf("guided found %d distinct shapes, random %d — coverage feedback bought nothing", gs, rs)
	}
	for i := range guided.Apps {
		g, r := guided.Apps[i], random.Apps[i]
		if g.DistinctShapes < r.DistinctShapes {
			t.Errorf("%s: guided %d < random %d distinct shapes", g.App, g.DistinctShapes, r.DistinctShapes)
		}
	}
}

// TestSearchFailureArtifact: the full find → minimize → reproduce loop in
// the controlled setting where the bug genuinely needs an injected fault —
// the jitter-free buggy kvstore (narrowKVSpec), whose blind-apply bug
// fires only under reorder. Search must find a failing schedule, Shrink
// must reduce it to a non-empty minimal reproduction, and the emitted
// JSON artifact must replay byte-for-byte.
func TestSearchFailureArtifact(t *testing.T) {
	spec := narrowKVSpec(t)
	rep := Search(SearchConfig{Apps: []apps.AppSpec{spec}, Buggy: true, Seed: 1, Budget: 160})
	fails := rep.Failures()
	if len(fails) == 0 {
		t.Fatal("search found no failing schedule on the narrow kvstore")
	}
	f := fails[0]
	if len(f.Schedule) == 0 || len(f.Shrunk) == 0 {
		t.Fatalf("baseline passes here, so found (%s) and shrunk (%s) schedules must be non-empty",
			f.Schedule, f.Shrunk)
	}
	if len(f.Shrunk) > len(f.Schedule) {
		t.Errorf("shrunk schedule longer than found one: %d > %d", len(f.Shrunk), len(f.Schedule))
	}
	if f.Artifact == nil {
		t.Fatal("failure has no artifact")
	}
	raw, err := f.Artifact.JSON()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadArtifact(raw)
	if err != nil {
		t.Fatal(err)
	}
	// The narrow spec is not the registry's kvstore, so replay through the
	// matching runner rather than registry resolution.
	runner := Runner{Spec: spec, Buggy: true, Seed: 1, Probe: true}
	if err := loaded.VerifyWith(runner); err != nil {
		t.Fatalf("search artifact does not replay: %v", err)
	}
	if len(loaded.Violations) == 0 {
		t.Error("artifact records no violations; the shrunk schedule no longer fails")
	}

	// Registry-app artifacts replay through Verify directly; on the stock
	// buggy kvstore the bug needs no injected fault, so the minimized
	// schedule is empty — still a valid, replayable counterexample.
	rep2 := Search(SearchConfig{Apps: []apps.AppSpec{appByName(t, "kvstore")}, Buggy: true,
		Seed: 1, Budget: 16})
	for _, f2 := range rep2.Failures() {
		raw2, err := f2.Artifact.JSON()
		if err != nil {
			t.Fatal(err)
		}
		loaded2, err := LoadArtifact(raw2)
		if err != nil {
			t.Fatal(err)
		}
		if err := loaded2.Verify(); err != nil {
			t.Fatalf("registry artifact does not replay: %v", err)
		}
	}
}
