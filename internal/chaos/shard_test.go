package chaos

import (
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/fault"
)

// TestMatrixShardingDeterminism: the sharded sweep produces a report
// byte-identical to the sequential one — same cell order, same scenarios,
// same digests — regardless of worker count.
func TestMatrixShardingDeterminism(t *testing.T) {
	cfg := MatrixConfig{
		Apps:  apps.Registry()[:2],
		Kinds: []fault.Kind{fault.Drop, fault.Crash, fault.Reorder},
		Seeds: []int64{1, 2},
	}
	seq := RunMatrix(cfg)
	for _, workers := range []int{2, 4, 16} {
		cfg.Workers = workers
		shard := RunMatrix(cfg)
		if len(shard.Cells) != len(seq.Cells) {
			t.Fatalf("workers=%d: %d cells, want %d", workers, len(shard.Cells), len(seq.Cells))
		}
		for i, c := range shard.Cells {
			s := seq.Cells[i]
			if c.Cell != s.Cell {
				t.Fatalf("workers=%d cell %d: %v, want %v (ordering broke)", workers, i, c.Cell, s.Cell)
			}
			if !reflect.DeepEqual(c.Scenario, s.Scenario) {
				t.Errorf("workers=%d %s: scenario %v != %v", workers, c.Cell, c.Scenario, s.Scenario)
			}
			if c.Result.Digest != s.Result.Digest {
				t.Errorf("workers=%d %s: digest mismatch", workers, c.Cell)
			}
			if c.Deterministic != s.Deterministic || c.Pass() != s.Pass() {
				t.Errorf("workers=%d %s: verdict mismatch", workers, c.Cell)
			}
		}
	}
}

// TestMatrixWorkersExceedCells: more workers than cells is clamped, not a
// deadlock or a panic.
func TestMatrixWorkersExceedCells(t *testing.T) {
	rep := RunMatrix(MatrixConfig{
		Apps:    apps.Registry()[:1],
		Kinds:   []fault.Kind{fault.Delay},
		Seeds:   []int64{1},
		Workers: 64,
	})
	if len(rep.Cells) != 1 || rep.Cells[0] == nil {
		t.Fatalf("cells = %v", rep.Cells)
	}
}

// TestShrinkTargets: after ddmin converges, individual processes are
// dropped from a scenario's target set one at a time — but never below a
// single member (empty = "all" would widen the scenario).
func TestShrinkTargets(t *testing.T) {
	sched := Schedule{{
		Kind:      fault.Drop,
		Targets:   []int{0, 1, 2, 3},
		Window:    Window{From: 1, To: 2},
		Intensity: Intensity{Prob: 0.1},
	}}
	// The failure only needs target 2 in the set.
	fails := func(s Schedule) bool {
		for _, sc := range s {
			for _, tgt := range sc.Targets {
				if tgt == 2 {
					return true
				}
			}
		}
		return false
	}
	res := Shrink(sched, fails, 200)
	if len(res.Schedule) != 1 {
		t.Fatalf("schedule shrank to %v", res.Schedule)
	}
	if got := res.Schedule[0].Targets; !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("targets shrank to %v, want [2]", got)
	}
}

// TestShrinkTargetsFloor: a failure that needs no particular target keeps
// one member rather than emptying the set.
func TestShrinkTargetsFloor(t *testing.T) {
	sched := Schedule{{
		Kind:      fault.Duplicate,
		Targets:   []int{0, 1, 2},
		Window:    Window{From: 1, To: 2},
		Intensity: Intensity{Prob: 0.1},
	}}
	fails := func(s Schedule) bool { return len(s) > 0 } // any non-empty schedule
	res := Shrink(sched, fails, 200)
	if len(res.Schedule) != 1 || len(res.Schedule[0].Targets) != 1 {
		t.Errorf("shrank to %v, want one scenario with one target", res.Schedule)
	}
}
