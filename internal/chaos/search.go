package chaos

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/apps"
)

// Fingerprint is one run's behavioral coverage signature: the exact merged
// scroll digest plus the coarser event-shape signature (scroll.Shape over
// ShapeBucket Lamport windows). The digest distinguishes almost every
// schedule — on its own, coverage would be all singletons — so corpus
// admission is keyed on the shape, and the digest tracks how many exact
// behaviors a search touched along the way.
type Fingerprint struct {
	Digest string
	Shape  string
}

// SearchConfig parameterizes a coverage-guided schedule search (Search)
// and its blind-sampling baseline (RandomSearch). Zero values select the
// defaults: every registered application, correct variants, seed 1, a
// budget of 48 executions per application, sequential evaluation.
type SearchConfig struct {
	Apps  []apps.AppSpec
	Buggy bool  // search the seeded-bug variants instead of the correct ones
	Seed  int64 // master seed; the whole search replays from it
	// Budget bounds the schedule executions per application. Shrinking
	// failures costs extra executions, bounded separately by ShrinkBudget.
	Budget int
	// Workers evaluates candidate batches on a worker pool. The report is
	// byte-identical for any worker count: candidates are generated
	// sequentially from the seeded rng before evaluation, results land by
	// candidate index, and corpus admission replays in that order.
	Workers int
	// ShrinkBudget bounds the executions Shrink spends per distinct failure
	// (default 200). Negative disables shrinking: failures are still
	// captured as artifacts, unminimized.
	ShrinkBudget int
	// CheckEvery is the early-exit invariant cadence every candidate runs
	// with (see Runner.CheckEvery): a run halts as soon as an invariant is
	// violated, which is what makes step-bound-saturating workloads like
	// the seeded-bug tokenring affordable to search. 0 checks only at
	// quiescence. Shrinking and artifacts inherit the cadence, so every
	// captured failure replays byte-identically.
	CheckEvery uint64
	// Baseline evaluates candidates on the pre-pooling reference path (see
	// Runner.Baseline); the report must be byte-identical. Used by the
	// runtime benchmark and the path-equivalence tests.
	Baseline bool
}

func (cfg SearchConfig) withDefaults() SearchConfig {
	if cfg.Apps == nil {
		cfg.Apps = apps.Registry()
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 48
	}
	if cfg.ShrinkBudget == 0 {
		cfg.ShrinkBudget = 200
	}
	return cfg
}

// CorpusEntry is one schedule the search kept because it reached a new
// event shape.
type CorpusEntry struct {
	Schedule    Schedule
	Fingerprint Fingerprint
	FoundAt     int    // 1-based execution index at admission
	Op          string // mutation operator that produced it ("seed:crash", "splice", ...)
	Novelty     int    // mutants of this entry that were themselves admitted
}

// GrowthPoint samples corpus and fingerprint growth over the budget — the
// coverage curve fixd-bench records into BENCH_search.json.
type GrowthPoint struct {
	Execs   int `json:"execs"`
	Corpus  int `json:"corpus"`
	Shapes  int `json:"shapes"`
	Digests int `json:"digests"`
}

// SearchFailure is a schedule the search found that violates the
// application's invariants, minimized and captured as a replayable
// artifact.
type SearchFailure struct {
	Schedule   Schedule // the failing candidate as found
	Violations []string
	Shrunk     Schedule // Shrink's 1-minimal reproduction
	ShrinkRuns int
	Minimal    bool
	Artifact   *Artifact // replayable JSON counterexample for Shrunk
}

// AppSearch is one application's search outcome.
type AppSearch struct {
	App             string
	Executions      int // budgeted candidate evaluations
	ShrinkRuns      int // extra executions spent minimizing failures
	DistinctShapes  int
	DistinctDigests int
	Corpus          []CorpusEntry
	Growth          []GrowthPoint
	Failures        []*SearchFailure
}

// SearchReport is a full search's outcome across applications.
type SearchReport struct {
	Strategy string // "guided" or "random"
	Seed     int64
	Budget   int // per application
	Buggy    bool
	Apps     []*AppSearch
}

// Totals sums distinct shapes and digests across applications.
func (r *SearchReport) Totals() (shapes, digests int) {
	for _, a := range r.Apps {
		shapes += a.DistinctShapes
		digests += a.DistinctDigests
	}
	return shapes, digests
}

// Failures flattens every application's failures.
func (r *SearchReport) Failures() []*SearchFailure {
	var out []*SearchFailure
	for _, a := range r.Apps {
		out = append(out, a.Failures...)
	}
	return out
}

// searchBatch is the number of candidates generated between corpus
// updates: small enough that coverage feedback steers most of the budget,
// large enough to keep a worker pool busy. It is a constant — not derived
// from Workers — so the search trajectory, and therefore the report, is
// identical for any worker count.
const searchBatch = 4

// Search runs AFL-style coverage-guided schedule search on each
// application: the corpus seeds with one generated scenario per fault kind
// (plus the fault-free baseline), every execution's event shape is the
// coverage signal, schedules reaching a new shape are admitted, and new
// candidates are mutated from corpus entries — window/intensity
// perturbation, retargeting, scenario add/drop, and splicing two parents —
// with every draw flowing through one seeded rng, so the whole search
// replays deterministically from cfg.Seed. Failing schedules are funneled
// into Shrink and emitted as replayable artifacts.
func Search(cfg SearchConfig) *SearchReport {
	cfg = cfg.withDefaults()
	rep := &SearchReport{Strategy: "guided", Seed: cfg.Seed, Budget: cfg.Budget, Buggy: cfg.Buggy}
	for _, spec := range cfg.Apps {
		rep.Apps = append(rep.Apps, searchApp(spec, cfg))
	}
	return rep
}

// RandomSearch is the blind-sampling baseline at the same budget: it
// evaluates the seeded single-scenario schedules the matrix would generate
// (kinds × seeds in matrix order) and tracks the identical coverage
// bookkeeping, but never mutates. Comparing its report against Search's
// quantifies what the coverage feedback buys (see experiment E10).
func RandomSearch(cfg SearchConfig) *SearchReport {
	cfg = cfg.withDefaults()
	rep := &SearchReport{Strategy: "random", Seed: cfg.Seed, Budget: cfg.Budget, Buggy: cfg.Buggy}
	for _, spec := range cfg.Apps {
		rep.Apps = append(rep.Apps, randomApp(spec, cfg))
	}
	return rep
}

// appSearchState is the shared bookkeeping both strategies update in
// deterministic candidate order.
type appSearchState struct {
	res       *AppSearch
	runner    Runner
	cfg       SearchConfig
	seenShape map[string]bool
	seenDig   map[string]bool
	failSeen  map[string]bool
}

func newAppSearchState(spec apps.AppSpec, cfg SearchConfig) *appSearchState {
	return &appSearchState{
		res:       &AppSearch{App: spec.Name},
		runner: Runner{Spec: spec, Buggy: cfg.Buggy, Seed: cfg.Seed, Probe: true,
			CheckEvery: cfg.CheckEvery, Baseline: cfg.Baseline},
		cfg:       cfg,
		seenShape: make(map[string]bool),
		seenDig:   make(map[string]bool),
		failSeen:  make(map[string]bool),
	}
}

// evaluate runs one batch of candidates, in parallel when cfg.Workers > 1.
// Results are written by candidate index, so the admission pass that
// follows sees them in generation order regardless of completion order.
func (st *appSearchState) evaluate(batch []Schedule) []*RunResult {
	out := make([]*RunResult, len(batch))
	workers := st.cfg.Workers
	if workers > len(batch) {
		workers = len(batch)
	}
	if workers <= 1 {
		for i, sched := range batch {
			out[i] = st.runner.Run(sched)
		}
		return out
	}
	var (
		wg   sync.WaitGroup
		next atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(batch) {
					return
				}
				out[i] = st.runner.Run(batch[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// admit processes one evaluated candidate: fingerprint bookkeeping, corpus
// admission on a new shape, and failure capture (shrink + artifact) on the
// first schedule violating each distinct invariant set.
func (st *appSearchState) admit(sched Schedule, op string, r *RunResult) {
	res := st.res
	res.Executions++
	st.seenDig[r.Digest] = true
	res.DistinctDigests = len(st.seenDig)
	if !st.seenShape[r.Shape] {
		st.seenShape[r.Shape] = true
		res.Corpus = append(res.Corpus, CorpusEntry{
			Schedule:    sched,
			Fingerprint: Fingerprint{Digest: r.Digest, Shape: r.Shape},
			FoundAt:     res.Executions,
			Op:          op,
		})
	}
	res.DistinctShapes = len(st.seenShape)
	if n := len(res.Corpus); n > 0 && res.Corpus[n-1].FoundAt == res.Executions {
		res.Growth = append(res.Growth, GrowthPoint{
			Execs: res.Executions, Corpus: n,
			Shapes: res.DistinctShapes, Digests: res.DistinctDigests,
		})
	}

	if len(r.Violations) == 0 {
		return
	}
	sig := strings.Join(r.Violations, "|")
	if st.failSeen[sig] {
		return
	}
	st.failSeen[sig] = true
	if st.cfg.ShrinkBudget < 0 {
		res.Failures = append(res.Failures, &SearchFailure{
			Schedule: sched, Violations: r.Violations, Shrunk: sched,
			Artifact: NewArtifact(st.runner, sched, r),
		})
		return
	}
	fails := func(s Schedule) bool {
		return len(st.runner.Run(s).Violations) > 0
	}
	sr := Shrink(sched, fails, st.cfg.ShrinkBudget)
	res.ShrinkRuns += sr.Runs
	shrunkRes := st.runner.Run(sr.Schedule)
	res.Failures = append(res.Failures, &SearchFailure{
		Schedule:   sched,
		Violations: r.Violations,
		Shrunk:     sr.Schedule,
		ShrinkRuns: sr.Runs,
		Minimal:    sr.Minimal,
		Artifact:   NewArtifact(st.runner, sr.Schedule, shrunkRes),
	})
}

// finish closes the growth curve with a final sample.
func (st *appSearchState) finish() *AppSearch {
	res := st.res
	if n := len(res.Growth); n == 0 || res.Growth[n-1].Execs != res.Executions {
		res.Growth = append(res.Growth, GrowthPoint{
			Execs: res.Executions, Corpus: len(res.Corpus),
			Shapes: res.DistinctShapes, Digests: res.DistinctDigests,
		})
	}
	return res
}

// searchRng derives the per-app mutation rng from the master seed and the
// application name, so adding an app to the sweep never perturbs another
// app's search trajectory.
func searchRng(seed int64, app string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "search|%s", app)
	return rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
}

// searchApp runs the guided loop for one application.
func searchApp(spec apps.AppSpec, cfg SearchConfig) *AppSearch {
	st := newAppSearchState(spec, cfg)
	procs := st.runner.Procs()
	crashable := st.runner.Crashable()
	rng := searchRng(cfg.Seed, spec.Name)

	// tried dedups candidates by canonical JSON: re-running a schedule the
	// search already evaluated can never reach new coverage, so duplicate
	// mutants are regenerated instead of burning budget.
	tried := make(map[string]bool)
	mark := func(s Schedule) bool {
		key, _ := json.Marshal(s)
		if tried[string(key)] {
			return false
		}
		tried[string(key)] = true
		return true
	}

	// Seed batch: the fault-free baseline plus one generated scenario per
	// matrix kind — the exact cells the random matrix would start from.
	var batch []Schedule
	var ops []string
	add := func(s Schedule, op string) {
		if st.res.Executions+len(batch) < cfg.Budget && mark(s) {
			batch = append(batch, s)
			ops = append(ops, op)
		}
	}
	add(nil, "seed:baseline")
	for _, kind := range MatrixKinds {
		add(Schedule{Generate(kind, procs, crashable, spec.Horizon, cfg.Seed)}.Normalize(),
			"seed:"+kind.String())
	}
	// Adaptive op scheduling: every operator starts with one credit and
	// earns another each time a mutant it produced is admitted, so the
	// budget drifts toward whatever operator class is currently uncovering
	// new shapes on this application.
	opCredit := make(map[string]int, len(MutationOps))
	for _, op := range MutationOps {
		opCredit[op] = 1
	}
	parents := make([]int, 0, searchBatch) // corpus index each candidate mutated

	for res := st.evaluate(batch); len(batch) > 0; {
		for i := range batch {
			before := len(st.res.Corpus)
			dupDigest := st.seenDig[res[i].Digest]
			st.admit(batch[i], ops[i], res[i])
			switch {
			case len(st.res.Corpus) > before: // admitted: credit op and parent
				opCredit[ops[i]]++
				if i < len(parents) {
					st.res.Corpus[parents[i]].Novelty++
				}
			case dupDigest: // behavioral no-op: back off this operator
				opCredit[ops[i]] = max(1, opCredit[ops[i]]-1)
			}
		}
		if st.res.Executions >= cfg.Budget {
			break
		}
		batch, ops, parents = batch[:0], ops[:0], parents[:0]
		n := min(searchBatch, cfg.Budget-st.res.Executions)
		for len(batch) < n {
			var cand Schedule
			var pi int
			op := ""
			for try := 0; try < 8; try++ { // retry duplicate mutants, bounded
				pi = pickParent(rng, st.res.Corpus)
				parent := st.res.Corpus[pi].Schedule
				donor := st.res.Corpus[rng.Intn(len(st.res.Corpus))].Schedule
				op = PickOp(rng, opCredit, parent, donor)
				cand = MutateOp(rng, op, parent, donor, procs, crashable, spec.Horizon)
				if mark(cand) {
					break
				}
			}
			batch = append(batch, cand)
			ops = append(ops, op)
			parents = append(parents, pi)
		}
		res = st.evaluate(batch)
	}
	return st.finish()
}

// pickParent selects the index of the corpus entry to mutate: half the
// time one of the most recent admissions (the AFL "favor the frontier"
// heuristic), half the time weighted by how much novelty an entry's
// mutants have produced so far.
func pickParent(rng *rand.Rand, corpus []CorpusEntry) int {
	if len(corpus) <= 1 {
		return 0
	}
	if recent := min(4, len(corpus)); rng.Intn(2) == 0 {
		return len(corpus) - 1 - rng.Intn(recent)
	}
	total := 0
	for i := range corpus {
		total += 1 + corpus[i].Novelty
	}
	pick := rng.Intn(total)
	for i := range corpus {
		w := 1 + corpus[i].Novelty
		if pick < w {
			return i
		}
		pick -= w
	}
	return len(corpus) - 1
}

// randomApp evaluates the matrix's seeded generation at the same budget:
// seeds cfg.Seed, cfg.Seed+1, ... sweep the fault kinds in matrix order.
func randomApp(spec apps.AppSpec, cfg SearchConfig) *AppSearch {
	st := newAppSearchState(spec, cfg)
	procs := st.runner.Procs()
	crashable := st.runner.Crashable()

	var batch []Schedule
	var ops []string
	for done := 0; done < cfg.Budget; done += len(batch) {
		batch, ops = batch[:0], ops[:0]
		for len(batch) < min(searchBatch, cfg.Budget-done) {
			i := done + len(batch) // global candidate index: kinds × seeds in matrix order
			kind := MatrixKinds[i%len(MatrixKinds)]
			seed := cfg.Seed + int64(i/len(MatrixKinds))
			batch = append(batch, Schedule{Generate(kind, procs, crashable, spec.Horizon, seed)}.Normalize())
			ops = append(ops, "random:"+kind.String())
		}
		res := st.evaluate(batch)
		for i := range batch {
			st.admit(batch[i], ops[i], res[i])
		}
	}
	return st.finish()
}
