package chaos

import (
	"sync"
	"sync/atomic"

	"repro/internal/apps"
	"repro/internal/fault"
)

// Fingerprint is one run's behavioral coverage signature: the exact merged
// scroll digest plus the coarser event-shape signature (scroll.Shape over
// ShapeBucket Lamport windows). The digest distinguishes almost every
// schedule — on its own, coverage would be all singletons — so corpus
// admission is keyed on the shape, and the digest tracks how many exact
// behaviors a search touched along the way.
type Fingerprint struct {
	Digest string
	Shape  string
}

// SearchConfig parameterizes a coverage-guided schedule search (Search)
// and its blind-sampling baseline (RandomSearch). Zero values select the
// defaults: every registered application, correct variants, seed 1, a
// budget of 48 executions per application, sequential evaluation.
type SearchConfig struct {
	Apps  []apps.AppSpec
	Buggy bool  // search the seeded-bug variants instead of the correct ones
	Seed  int64 // master seed; the whole search replays from it
	// Budget bounds the schedule executions per application. Shrinking
	// failures costs extra executions, bounded separately by ShrinkBudget.
	Budget int
	// Workers evaluates candidate batches on a worker pool. The report is
	// byte-identical for any worker count: candidates are generated
	// sequentially from the seeded rng before evaluation, results land by
	// candidate index, and corpus admission replays in that order.
	Workers int
	// ShrinkBudget bounds the executions Shrink spends per distinct failure
	// (default 200). Negative disables shrinking: failures are still
	// captured as artifacts, unminimized.
	ShrinkBudget int
	// CheckEvery is the early-exit invariant cadence every candidate runs
	// with (see Runner.CheckEvery): a run halts as soon as an invariant is
	// violated, which is what makes step-bound-saturating workloads like
	// the seeded-bug tokenring affordable to search. 0 checks only at
	// quiescence. Shrinking and artifacts inherit the cadence, so every
	// captured failure replays byte-identically.
	CheckEvery uint64
	// Baseline evaluates candidates on the pre-pooling reference path (see
	// Runner.Baseline); the report must be byte-identical. Used by the
	// runtime benchmark and the path-equivalence tests.
	Baseline bool
	// ExtraKinds seeds the guided corpus with generated scenarios for fault
	// kinds beyond MatrixKinds (Rollback, Corrupt, SlowNode). They are
	// appended after the matrix seeds, so the default empty list leaves every
	// existing search trajectory — and the pinned pre-refactor fixtures —
	// byte-identical.
	ExtraKinds []fault.Kind
}

// WithDefaults resolves the zero-value knobs to their documented defaults.
// Search and NewFrontier apply it internally; external drivers (the fleet
// coordinator) call it to know the resolved seed, budget and application
// list before building frontiers.
func (cfg SearchConfig) WithDefaults() SearchConfig { return cfg.withDefaults() }

func (cfg SearchConfig) withDefaults() SearchConfig {
	if cfg.Apps == nil {
		cfg.Apps = apps.Registry()
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 48
	}
	if cfg.ShrinkBudget == 0 {
		cfg.ShrinkBudget = 200
	}
	return cfg
}

// CorpusEntry is one schedule the search kept because it reached a new
// event shape.
type CorpusEntry struct {
	Schedule    Schedule
	Fingerprint Fingerprint
	FoundAt     int    // 1-based execution index at admission
	Op          string // mutation operator that produced it ("seed:crash", "splice", ...)
	Novelty     int    // mutants of this entry that were themselves admitted
}

// GrowthPoint samples corpus and fingerprint growth over the budget — the
// coverage curve fixd-bench records into BENCH_search.json.
type GrowthPoint struct {
	Execs   int `json:"execs"`
	Corpus  int `json:"corpus"`
	Shapes  int `json:"shapes"`
	Digests int `json:"digests"`
}

// SearchFailure is a schedule the search found that violates the
// application's invariants, minimized and captured as a replayable
// artifact.
type SearchFailure struct {
	Schedule   Schedule // the failing candidate as found
	Violations []string
	Shrunk     Schedule // Shrink's 1-minimal reproduction
	ShrinkRuns int
	Minimal    bool
	Artifact   *Artifact // replayable JSON counterexample for Shrunk
}

// AppSearch is one application's search outcome.
type AppSearch struct {
	App             string
	Executions      int // budgeted candidate evaluations
	ShrinkRuns      int // extra executions spent minimizing failures
	DistinctShapes  int
	DistinctDigests int
	Corpus          []CorpusEntry
	Growth          []GrowthPoint
	Failures        []*SearchFailure
}

// SearchReport is a full search's outcome across applications.
type SearchReport struct {
	Strategy string // "guided" or "random"
	Seed     int64
	Budget   int // per application
	Buggy    bool
	Apps     []*AppSearch
}

// Totals sums distinct shapes and digests across applications.
func (r *SearchReport) Totals() (shapes, digests int) {
	for _, a := range r.Apps {
		shapes += a.DistinctShapes
		digests += a.DistinctDigests
	}
	return shapes, digests
}

// Failures flattens every application's failures.
func (r *SearchReport) Failures() []*SearchFailure {
	var out []*SearchFailure
	for _, a := range r.Apps {
		out = append(out, a.Failures...)
	}
	return out
}

// searchBatch is the number of candidates generated between corpus
// updates: small enough that coverage feedback steers most of the budget,
// large enough to keep a worker pool busy. It is a constant — not derived
// from Workers — so the search trajectory, and therefore the report, is
// identical for any worker count.
const searchBatch = 4

// Search runs AFL-style coverage-guided schedule search on each
// application: the corpus seeds with one generated scenario per fault kind
// (plus the fault-free baseline), every execution's event shape is the
// coverage signal, schedules reaching a new shape are admitted, and new
// candidates are mutated from corpus entries — window/intensity
// perturbation, retargeting, scenario add/drop, and splicing two parents —
// with every draw flowing through one seeded rng, so the whole search
// replays deterministically from cfg.Seed. Failing schedules are funneled
// into Shrink and emitted as replayable artifacts.
//
// Search is the in-process driver of a Frontier; the fleet coordinator
// (internal/fleet) drives the identical frontier with remote evaluation
// and produces byte-identical reports.
func Search(cfg SearchConfig) *SearchReport {
	cfg = cfg.withDefaults()
	rep := &SearchReport{Strategy: string(StrategyGuided), Seed: cfg.Seed, Budget: cfg.Budget, Buggy: cfg.Buggy}
	for _, spec := range cfg.Apps {
		rep.Apps = append(rep.Apps, driveFrontier(NewFrontier(spec, cfg, StrategyGuided), cfg.Workers))
	}
	return rep
}

// RandomSearch is the blind-sampling baseline at the same budget: it
// evaluates the seeded single-scenario schedules the matrix would generate
// (kinds × seeds in matrix order) and tracks the identical coverage
// bookkeeping, but never mutates. Comparing its report against Search's
// quantifies what the coverage feedback buys (see experiment E10).
func RandomSearch(cfg SearchConfig) *SearchReport {
	cfg = cfg.withDefaults()
	rep := &SearchReport{Strategy: string(StrategyRandom), Seed: cfg.Seed, Budget: cfg.Budget, Buggy: cfg.Buggy}
	for _, spec := range cfg.Apps {
		rep.Apps = append(rep.Apps, driveFrontier(NewFrontier(spec, cfg, StrategyRandom), cfg.Workers))
	}
	return rep
}

// driveFrontier runs one application's frontier to exhaustion on a local
// worker pool: generate a batch, evaluate it, admit results in candidate
// order, repeat.
func driveFrontier(f *Frontier, workers int) *AppSearch {
	for batch := f.NextBatch(); len(batch) > 0; batch = f.NextBatch() {
		res := evalCandidates(f.Runner(), workers, batch)
		for i := range batch {
			f.Admit(batch[i], res[i])
		}
	}
	return f.Finish()
}

// evalCandidates runs one batch of candidates, in parallel when
// workers > 1. Results are written by candidate index, so the admission
// pass that follows sees them in generation order regardless of completion
// order.
func evalCandidates(runner Runner, workers int, batch []Candidate) []*RunResult {
	out := make([]*RunResult, len(batch))
	if workers > len(batch) {
		workers = len(batch)
	}
	if workers <= 1 {
		for i, c := range batch {
			out[i] = runner.Run(c.Schedule)
		}
		return out
	}
	var (
		wg   sync.WaitGroup
		next atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(batch) {
					return
				}
				out[i] = runner.Run(batch[i].Schedule)
			}
		}()
	}
	wg.Wait()
	return out
}
