package chaos

import (
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/fault"
)

// TestChaosMatrixSmoke is the CI smoke sweep: every fault kind on every
// application at one seed. It must stay well under a second.
func TestChaosMatrixSmoke(t *testing.T) {
	rep := RunMatrix(MatrixConfig{Seeds: []int64{1}})
	if want := len(MatrixKinds) * len(apps.Registry()); len(rep.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(rep.Cells), want)
	}
	for _, c := range rep.Failures() {
		t.Errorf("%s under %s: %s", c.Cell, c.Scenario, c.Fail())
	}
}

// TestChaosMatrix is the full deterministic sweep: 7 fault kinds × 5
// applications × 4 seeds. Every cell must uphold the matrix contract —
// global invariants hold on the correct variants, repeated execution is
// byte-identical, and injected clock skew is locally detected.
func TestChaosMatrix(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	rep := RunMatrix(MatrixConfig{Seeds: seeds})
	nApps, nKinds := len(apps.Registry()), len(MatrixKinds)
	if nKinds < 5 {
		t.Fatalf("matrix sweeps %d fault kinds, want >= 5", nKinds)
	}
	if nApps != 5 {
		t.Fatalf("matrix sweeps %d apps, want 5", nApps)
	}
	if want := nApps * nKinds * len(seeds); len(rep.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(rep.Cells), want)
	}
	for _, c := range rep.Failures() {
		t.Errorf("%s under %s: %s", c.Cell, c.Scenario, c.Fail())
	}
}

// TestChaosMatrixDeterministic re-runs the smoke sweep and requires the
// two reports to match scenario-for-scenario and digest-for-digest.
func TestChaosMatrixDeterministic(t *testing.T) {
	a := RunMatrix(MatrixConfig{Seeds: []int64{7}})
	b := RunMatrix(MatrixConfig{Seeds: []int64{7}})
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		ca, cb := a.Cells[i], b.Cells[i]
		if !reflect.DeepEqual(ca.Scenario, cb.Scenario) {
			t.Errorf("%s: scenarios differ: %s vs %s", ca.Cell, ca.Scenario, cb.Scenario)
		}
		if ca.Result.Digest != cb.Result.Digest {
			t.Errorf("%s: digests differ across sweeps", ca.Cell)
		}
	}
}

// TestChaosPipeline drives the full detect → report → recover pipeline on
// every application's seeded-bug variant: the bug is detected, the
// Investigator produces a violation trail, the detector's scroll replays
// without divergence, and the Healer's dynamic update restores the
// invariants. Detection seeds are searched deterministically.
func TestChaosPipeline(t *testing.T) {
	for _, spec := range apps.Registry() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			var done *PipelineResult
			for seed := int64(1); seed <= 8; seed++ {
				p := RunPipeline(spec, seed)
				if p.Complete() {
					done = p
					break
				}
			}
			if done == nil {
				t.Fatal("no seed in 1..8 completes the pipeline")
			}
			// The pipeline itself must be reproducible: same seed, same
			// fault, same scroll digest at detection time.
			again := RunPipeline(spec, done.Seed)
			if again.FaultDesc != done.FaultDesc || again.Digest != done.Digest {
				t.Errorf("pipeline not deterministic: (%q,%s) vs (%q,%s)",
					done.FaultDesc, done.Digest[:12], again.FaultDesc, again.Digest[:12])
			}
		})
	}
}

// TestGenerateDeterministic: identical cell identity ⇒ identical scenario.
func TestGenerateDeterministic(t *testing.T) {
	procs := []string{"a", "b", "c", ProbeName}
	for _, kind := range MatrixKinds {
		s1 := Generate(kind, procs, []int{0, 1}, 100, 42)
		s2 := Generate(kind, procs, []int{0, 1}, 100, 42)
		if !reflect.DeepEqual(s1, s2) {
			t.Errorf("%v: %s vs %s", kind, s1, s2)
		}
		s3 := Generate(kind, procs, []int{0, 1}, 100, 43)
		if reflect.DeepEqual(s1, s3) && kind != fault.Crash {
			t.Logf("%v: seeds 42 and 43 generated the same scenario (allowed, but suspicious): %s", kind, s1)
		}
	}
}

// TestScheduleCompile checks the scenario → injection mapping.
func TestScheduleCompile(t *testing.T) {
	procs := []string{"p0", "p1", "p2"}
	sched := Schedule{
		{Kind: fault.Crash, Targets: []int{1}, Window: Window{From: 10, To: 30}},
		{Kind: fault.Partition, Targets: []int{0, 2}, Window: Window{From: 5, To: 15}},
		{Kind: fault.Reorder, Window: Window{From: 0, To: 50}, Intensity: Intensity{Jitter: 9}},
		{Kind: fault.ClockSkew, Targets: []int{2}, Window: Window{From: 1, To: 2}, Intensity: Intensity{Skew: -7}},
	}
	plan := sched.Compile(procs)
	if len(plan.Injections) != 5 { // crash+restart, partition, reorder, skew
		t.Fatalf("injections = %d, want 5", len(plan.Injections))
	}
	if inj := plan.Injections[0]; inj.Kind != fault.Crash || inj.Proc != "p1" || inj.At != 10 {
		t.Errorf("crash = %+v", inj)
	}
	if inj := plan.Injections[1]; inj.Kind != fault.Restart || inj.Proc != "p1" || inj.At != 30 {
		t.Errorf("restart = %+v", inj)
	}
	if inj := plan.Injections[2]; inj.Kind != fault.Partition || len(inj.Group) != 2 {
		t.Errorf("partition = %+v", inj)
	}
	if inj := plan.Injections[3]; inj.Kind != fault.Reorder || inj.Jitter != 9 || len(inj.Group) != 0 {
		t.Errorf("reorder = %+v", inj)
	}
	if inj := plan.Injections[4]; inj.Kind != fault.ClockSkew || inj.Proc != "p2" || inj.Skew != -7 {
		t.Errorf("skew = %+v", inj)
	}
	// Out-of-range targets are skipped, not compiled into bogus injections.
	bad := Schedule{{Kind: fault.Crash, Targets: []int{99}, Window: Window{From: 1, To: 2}}}
	if got := len(bad.Compile(procs).Injections); got != 0 {
		t.Errorf("out-of-range target compiled %d injections", got)
	}
}
