package chaos

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/fault"
)

// MaxScheduleLen caps a normalized schedule's scenario count. Mutation and
// fuzzing both sanitize through Normalize, so no candidate ever grows
// without bound.
const MaxScheduleLen = 8

// normalization clamps, chosen so any normalized schedule compiles into an
// injectable plan on any application shape without overflow or pathology.
const (
	maxWindowEdge = 1 << 30 // window edges stay comfortably inside uint64 math
	maxTargetIdx  = 255     // out-of-range targets are skipped at compile anyway
	maxTargets    = 16
	maxExtra      = 1 << 20 // injected latency bound
	maxSkewAbs    = 1 << 20
)

// validScenarioKind reports whether k is a scenario kind (Restart is not:
// it exists only as the compiled second half of a Crash scenario).
// Rollback, Corrupt and SlowNode are valid scenario kinds without being
// matrix-swept: the storm suites and the scenario-zoo sweeps compose them
// explicitly, and mutation must not normalize them away when it splices
// such a schedule.
func validScenarioKind(k fault.Kind) bool {
	switch k { //fixd:nondeterm membership test: kinds not listed fall through to the MatrixKinds scan below
	case fault.Rollback, fault.Corrupt, fault.SlowNode:
		return true
	}
	for _, mk := range MatrixKinds {
		if k == mk {
			return true
		}
	}
	return false
}

// Normalize returns the canonical, injectable form of the schedule:
//
//   - scenarios with non-scenario kinds are dropped;
//   - windows are ordered (To >= From) and clamped to sane bounds;
//   - target lists are deduplicated, sorted, bounded, and stripped of
//     out-of-range indices;
//   - intensities keep only the fields the kind uses, scrubbed of NaN/Inf
//     and clamped (Prob to [0,1]);
//   - the scenario count is capped at MaxScheduleLen.
//
// Normalize is idempotent, and a normalized schedule JSON round-trips
// byte-identically (see FuzzScheduleRoundTrip) — which makes it the
// sanitation step for both the mutation engine and arbitrary fuzz inputs.
func (s Schedule) Normalize() Schedule {
	out := make(Schedule, 0, min(len(s), MaxScheduleLen))
	for _, sc := range s {
		if len(out) == MaxScheduleLen {
			break
		}
		if !validScenarioKind(sc.Kind) {
			continue
		}
		n := Scenario{Kind: sc.Kind}

		// Window: order and clamp.
		from, to := sc.Window.From, sc.Window.To
		if to < from {
			from, to = to, from
		}
		if from > maxWindowEdge {
			from = maxWindowEdge
		}
		if to > maxWindowEdge {
			to = maxWindowEdge
		}
		n.Window = Window{From: from, To: to}

		// Targets: in-range, unique, sorted, bounded.
		if len(sc.Targets) > 0 {
			seen := make(map[int]bool, len(sc.Targets))
			for _, t := range sc.Targets {
				if t >= 0 && t <= maxTargetIdx && !seen[t] {
					seen[t] = true
					n.Targets = append(n.Targets, t)
				}
			}
			sort.Ints(n.Targets)
			if len(n.Targets) > maxTargets {
				n.Targets = n.Targets[:maxTargets]
			}
			if len(n.Targets) == 0 {
				n.Targets = nil
			}
		}

		// Intensity: only the kind's fields, clamped.
		switch sc.Kind {
		case fault.Delay, fault.SlowNode:
			n.Intensity.Extra = min(sc.Intensity.Extra, maxExtra)
		case fault.Reorder:
			n.Intensity.Extra = min(sc.Intensity.Extra, maxExtra)
			n.Intensity.Jitter = min(sc.Intensity.Jitter, maxExtra)
		case fault.Duplicate, fault.Drop, fault.Corrupt:
			p := sc.Intensity.Prob
			switch {
			case math.IsNaN(p) || p <= 0:
				p = 0
			case p > 1:
				p = 1
			}
			n.Intensity.Prob = p
		case fault.ClockSkew:
			sk := sc.Intensity.Skew
			if sk > maxSkewAbs {
				sk = maxSkewAbs
			}
			if sk < -maxSkewAbs {
				sk = -maxSkewAbs
			}
			n.Intensity.Skew = sk
		case fault.Crash, fault.Restart, fault.Partition, fault.Rollback:
			// No intensity fields to clamp; n.Intensity stays zero.
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// DecodeSchedule interprets arbitrary bytes as a fault schedule — the entry
// point fuzzing and corpus seeding share. JSON input (as emitted for
// schedules inside shrinker artifacts) is decoded structurally and every
// scenario kind is validated: an unknown or non-scenario kind is a
// descriptive error, not a silently dropped no-op. Anything else is
// consumed as a compact binary form, ten bytes per scenario, whose kind
// byte always maps onto a matrix kind. The result is not yet normalized:
// callers sanitize with Normalize.
func DecodeSchedule(data []byte) (Schedule, error) {
	var s Schedule
	if len(data) > 0 && (data[0] == '[' || data[0] == '{') {
		if err := json.Unmarshal(data, &s); err != nil {
			var a struct{ Schedule Schedule }
			if err2 := json.Unmarshal(data, &a); err2 != nil {
				return nil, fmt.Errorf("chaos: schedule JSON: %w", err)
			}
			s = a.Schedule
		}
		for i, sc := range s {
			if !validScenarioKind(sc.Kind) {
				return nil, fmt.Errorf("chaos: scenario %d has unknown fault kind %v (valid: matrix kinds plus %v, %v, %v)",
					i, sc.Kind, fault.Rollback, fault.Corrupt, fault.SlowNode)
			}
		}
		return s, nil
	}
	const per = 10
	for len(data) >= per && len(s) < MaxScheduleLen {
		b := data[:per]
		data = data[per:]
		sc := Scenario{Kind: MatrixKinds[int(b[0])%len(MatrixKinds)]}
		from := uint64(b[1]) | uint64(b[2])<<8
		length := uint64(b[3])
		sc.Window = Window{From: from, To: from + length}
		for i := 0; i < 8; i++ {
			if b[4]&(1<<i) != 0 {
				sc.Targets = append(sc.Targets, i)
			}
		}
		switch sc.Kind {
		case fault.Delay:
			sc.Intensity.Extra = uint64(b[5])
		case fault.Reorder:
			sc.Intensity.Extra = uint64(b[5])
			sc.Intensity.Jitter = uint64(b[6])
		case fault.Duplicate, fault.Drop, fault.Corrupt:
			sc.Intensity.Prob = float64(b[5]) / 255
		case fault.ClockSkew:
			sc.Intensity.Skew = int64(b[5]) - 128
		case fault.SlowNode:
			sc.Intensity.Extra = uint64(b[5])
		case fault.Crash, fault.Restart, fault.Partition, fault.Rollback:
			// No intensity bytes to decode.
		}
		// Corrupt and SlowNode are unreachable today — the kind byte maps
		// onto MatrixKinds only — but the PR 9 rollout left their intensity
		// decode missing here, which would have silently produced zero
		// probability/lag the day either joins the binary form. fixd-lint's
		// kindswitch analyzer found the gap.
		s = append(s, sc)
	}
	return s, nil
}

// Mutation operator names, as recorded in CorpusEntry.Op.
const (
	OpPerturbWindow    = "perturb-window"
	OpPerturbIntensity = "perturb-intensity"
	OpRetarget         = "retarget"
	OpAddScenario      = "add-scenario"
	OpDropScenario     = "drop-scenario"
	OpSplice           = "splice"
)

// MutationOps lists every operator, in the order adaptive op scheduling
// reports them.
var MutationOps = []string{
	OpPerturbWindow, OpPerturbIntensity, OpRetarget,
	OpAddScenario, OpDropScenario, OpSplice,
}

// Mutate derives one candidate schedule from a corpus parent (and, for
// splicing, a donor — any other corpus entry) with an operator drawn at
// static weights favoring composition: multi-fault schedules are the
// region the matrix's single-scenario generator never samples, so they are
// where coverage feedback pays. Every random draw flows through rng, so a
// seeded search replays its entire mutation sequence deterministically.
// The returned schedule is normalized and never empty; the second return
// names the operator applied. The guided search picks operators itself
// (adaptively) and calls MutateOp directly.
func Mutate(rng *rand.Rand, parent, donor Schedule, procs []string, crashable []int, horizon uint64) (Schedule, string) {
	weights := map[string]int{
		OpAddScenario: 3, OpSplice: 3, OpRetarget: 2,
		OpPerturbWindow: 2, OpPerturbIntensity: 2, OpDropScenario: 1,
	}
	op := PickOp(rng, weights, parent, donor)
	return MutateOp(rng, op, parent, donor, procs, crashable, horizon), op
}

// PickOp draws a mutation operator by weight, skipping operators that are
// degenerate for the given parent/donor (dropping from a near-empty
// schedule, splicing without a donor, mutating an empty parent).
func PickOp(rng *rand.Rand, weights map[string]int, parent, donor Schedule) string {
	usable := func(op string) bool {
		switch {
		case len(parent) == 0:
			return op == OpAddScenario
		case op == OpDropScenario:
			return len(parent) >= 2
		case op == OpSplice:
			return len(donor) > 0
		}
		return true
	}
	total := 0
	for _, op := range MutationOps {
		if usable(op) {
			total += max(weights[op], 1)
		}
	}
	if total == 0 {
		return OpAddScenario
	}
	pick := rng.Intn(total)
	for _, op := range MutationOps {
		if !usable(op) {
			continue
		}
		w := max(weights[op], 1)
		if pick < w {
			return op
		}
		pick -= w
	}
	return OpAddScenario
}

// MutateOp applies one named operator. See Mutate.
func MutateOp(rng *rand.Rand, op string, parent, donor Schedule, procs []string, crashable []int, horizon uint64) Schedule {
	if horizon < 40 {
		horizon = 40
	}
	cand := append(Schedule{}, parent...)
	if len(cand) == 0 {
		op = OpAddScenario
	}

	switch op {
	case OpPerturbWindow:
		i := rng.Intn(len(cand))
		sc := cand[i]
		span := int64(horizon/4) + 1
		shift := rng.Int63n(2*span+1) - span
		from := int64(sc.Window.From) + shift
		if from < 0 {
			from = 0
		}
		if from > 2*int64(horizon) {
			from = 2 * int64(horizon) // far past quiescence a window is a no-op
		}
		length := sc.Window.Len()
		switch rng.Intn(3) {
		case 0:
			length /= 2
		case 1:
			length = length*2 + 1
		}
		if length == 0 {
			length = 1
		}
		sc.Window = Window{From: uint64(from), To: uint64(from) + length}
		cand[i] = sc
	case OpPerturbIntensity:
		i := rng.Intn(len(cand))
		sc := cand[i]
		grow := rng.Intn(2) == 0
		scale := func(v uint64) uint64 {
			if grow {
				return v*2 + 1
			}
			return v / 2
		}
		switch sc.Kind {
		case fault.Delay, fault.SlowNode:
			sc.Intensity.Extra = scale(sc.Intensity.Extra)
		case fault.Reorder:
			sc.Intensity.Jitter = scale(sc.Intensity.Jitter)
		case fault.Duplicate, fault.Drop, fault.Corrupt:
			if grow {
				sc.Intensity.Prob = math.Min(1, sc.Intensity.Prob*1.5+0.05)
			} else {
				sc.Intensity.Prob /= 2
			}
		case fault.ClockSkew:
			if grow {
				sc.Intensity.Skew *= 2
			} else {
				sc.Intensity.Skew /= 2
			}
			if sc.Intensity.Skew == 0 {
				sc.Intensity.Skew = 6 // below the probe cadence a skew is invisible
			}
		default: // Crash, Partition: nothing to scale; nudge the window instead
			sc.Window.To++
		}
		cand[i] = sc
	case OpRetarget:
		i := rng.Intn(len(cand))
		sc := cand[i]
		sc.Targets = pickTargets(rng, sc.Kind, procs, crashable)
		cand[i] = sc
	case OpAddScenario:
		kind := MatrixKinds[rng.Intn(len(MatrixKinds))]
		cand = append(cand, Generate(kind, procs, crashable, horizon, rng.Int63()))
	case OpDropScenario:
		i := rng.Intn(len(cand))
		cand = append(cand[:i], cand[i+1:]...)
	case OpSplice:
		i := rng.Intn(len(cand) + 1)
		j := rng.Intn(len(donor))
		cand = append(append(Schedule{}, cand[:i]...), donor[j:]...)
	}
	out := cand.Normalize()
	if len(out) == 0 {
		kind := MatrixKinds[rng.Intn(len(MatrixKinds))]
		out = Schedule{Generate(kind, procs, crashable, horizon, rng.Int63())}.Normalize()
	}
	return out
}

// pickTargets draws a scenario's target set — the single implementation
// Generate and the retarget mutation share: crash scenarios target one
// crashable process, clock skew targets the probe (always the trailing
// process, see ProbeName), partitions leave someone outside, slow-node
// slows one application process, and message-level kinds (Corrupt
// included) pick a non-empty subset of the app's processes.
func pickTargets(rng *rand.Rand, kind fault.Kind, procs []string, crashable []int) []int {
	n := len(procs) - 1 // exclude the trailing clock probe
	if n < 1 {
		n = 1
	}
	subset := func(max int) []int {
		if max < 1 {
			max = 1
		}
		k := 1 + rng.Intn(min(max, n))
		perm := rng.Perm(n)[:k]
		sort.Ints(perm)
		return perm
	}
	switch kind {
	case fault.Crash, fault.Rollback:
		if len(crashable) == 0 {
			return nil
		}
		return []int{crashable[rng.Intn(len(crashable))]}
	case fault.ClockSkew:
		return []int{len(procs) - 1}
	case fault.SlowNode:
		return []int{rng.Intn(n)}
	case fault.Partition:
		return subset(len(procs) - 2)
	default:
		return subset(len(procs))
	}
}
