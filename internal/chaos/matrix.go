package chaos

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/dsim"
	"repro/internal/fault"
	"repro/internal/heal"
	"repro/internal/scroll"
	"repro/internal/substrate"
)

// Cell identifies one matrix cell: application × fault kind × seed.
type Cell struct {
	App  string
	Kind fault.Kind
	Seed int64
}

// String renders the cell, e.g. "kvstore/reorder/s3".
func (c Cell) String() string { return fmt.Sprintf("%s/%v/s%d", c.App, c.Kind, c.Seed) }

// CellResult is one matrix cell's outcome.
type CellResult struct {
	Cell
	Scenario      Scenario
	Result        *RunResult
	Deterministic bool // the repeated run produced a byte-identical digest
}

// Pass reports whether the cell upholds the matrix contract: the correct
// variant's global invariants hold under the injected fault, the execution
// is deterministic, and — for clock-skew cells — the skew was locally
// detected by the clock probe.
func (c *CellResult) Pass() bool { return c.Fail() == "" }

// Fail describes why the cell failed (empty when it passed).
func (c *CellResult) Fail() string {
	switch {
	case !c.Deterministic:
		return "nondeterministic digest"
	case len(c.Result.Violations) > 0:
		return fmt.Sprintf("invariants violated: %v", c.Result.Violations)
	case c.Kind == fault.ClockSkew && c.Result.ProbeFaults == 0:
		return "clock skew not locally detected"
	default:
		return ""
	}
}

// MatrixConfig parameterizes a sweep. Zero values select the defaults:
// every registered application, every matrix fault kind, seeds 1–4,
// sequential execution.
type MatrixConfig struct {
	Apps  []apps.AppSpec
	Kinds []fault.Kind
	Seeds []int64
	// Workers shards the sweep across a bounded worker pool. Cells are
	// independent (each owns its simulation), so any worker count produces
	// the identical report: results are written by cell index, never by
	// completion order. <= 1 runs sequentially.
	Workers int
	// LiveSample opts into the live matrix lane: after the sim sweep, up to
	// this many passing cells (the first ones in report order) re-run their
	// schedules on substrate.LiveSubstrate — the same machines as real
	// goroutines — checking invariants only. Replay digests are sim-only
	// (real scheduling is outside the seed's control), so a live cell
	// diverges when an invariant that held in simulation breaks under real
	// concurrency, or the live run errors. Cells run sequentially: each
	// owns real goroutines and timers.
	LiveSample int
	// CheckEvery is the early-exit invariant cadence every cell runs with
	// (see Runner.CheckEvery). 0 checks only at quiescence.
	CheckEvery uint64
	// Baseline runs every cell on the pre-pooling reference path (see
	// Runner.Baseline); the report must be byte-identical. Used by the
	// runtime benchmark and the path-equivalence tests.
	Baseline bool
}

// LiveCellResult is one live-lane re-execution of a passing sim cell.
type LiveCellResult struct {
	Cell
	Scenario   Scenario
	Err        string   // live substrate construction or run error
	Violations []string // invariants violated at live quiescence
}

// Diverged reports whether the live re-run broke the invariants that held
// in simulation (or failed to run at all).
func (l *LiveCellResult) Diverged() bool { return l.Err != "" || len(l.Violations) > 0 }

// MatrixReport is a full sweep's outcome.
type MatrixReport struct {
	Cells []*CellResult
	// Live holds the opt-in live-lane results (MatrixConfig.LiveSample).
	Live []*LiveCellResult `json:",omitempty"`
}

// Failures returns the cells that broke the matrix contract.
func (m *MatrixReport) Failures() []*CellResult {
	var out []*CellResult
	for _, c := range m.Cells {
		if !c.Pass() {
			out = append(out, c)
		}
	}
	return out
}

// LiveDivergences returns the live-lane cells whose invariants broke under
// real concurrency.
func (m *MatrixReport) LiveDivergences() []*LiveCellResult {
	var out []*LiveCellResult
	for _, l := range m.Live {
		if l.Diverged() {
			out = append(out, l)
		}
	}
	return out
}

// RunMatrix sweeps fault kinds × applications × seeds on the correct
// variants. Each cell generates its scenario from the cell identity,
// executes it twice (the second run is the replay-determinism check), and
// evaluates the application's global invariants at quiescence. With
// cfg.Workers > 1 the cells are sharded across a worker pool; the report
// is identical to a sequential sweep regardless of worker count.
func RunMatrix(cfg MatrixConfig) *MatrixReport {
	if cfg.Apps == nil {
		cfg.Apps = apps.Registry()
	}
	if cfg.Kinds == nil {
		cfg.Kinds = MatrixKinds
	}
	if cfg.Seeds == nil {
		cfg.Seeds = []int64{1, 2, 3, 4}
	}
	// Enumerate the cells up front: the slice order is the report order,
	// whatever order the workers finish in.
	type cellSpec struct {
		spec apps.AppSpec
		kind fault.Kind
		seed int64
	}
	var specs []cellSpec
	for _, spec := range cfg.Apps {
		for _, kind := range cfg.Kinds {
			for _, seed := range cfg.Seeds {
				specs = append(specs, cellSpec{spec: spec, kind: kind, seed: seed})
			}
		}
	}
	rep := &MatrixReport{Cells: make([]*CellResult, len(specs))}
	runCell := func(i int) {
		cs := specs[i]
		runner := Runner{Spec: cs.spec, Seed: cs.seed, Probe: true,
			CheckEvery: cfg.CheckEvery, Baseline: cfg.Baseline}
		scen := Generate(cs.kind, runner.Procs(), runner.Crashable(), cs.spec.Horizon, cs.seed)
		sched := Schedule{scen}
		r1 := runner.Run(sched)
		r2 := runner.Run(sched)
		rep.Cells[i] = &CellResult{
			Cell:          Cell{App: cs.spec.Name, Kind: cs.kind, Seed: cs.seed},
			Scenario:      scen,
			Result:        r1,
			Deterministic: r1.Digest == r2.Digest,
		}
	}
	// runLiveLane re-runs the first LiveSample passing cells (report order,
	// so the sample is deterministic) on the live substrate, sequentially:
	// each live cell owns real goroutines and timers.
	runLiveLane := func() {
		remaining := cfg.LiveSample
		for i, c := range rep.Cells {
			if remaining == 0 {
				break
			}
			if c == nil || !c.Pass() {
				continue
			}
			rep.Live = append(rep.Live, runLiveCell(specs[i].spec, c))
			remaining--
		}
	}
	workers := cfg.Workers
	if workers <= 1 {
		for i := range specs {
			runCell(i)
		}
		runLiveLane()
		return rep
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	var (
		wg   sync.WaitGroup
		next atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				runCell(i)
			}
		}()
	}
	wg.Wait()
	runLiveLane()
	return rep
}

// runLiveCell re-executes one passing sim cell's schedule on the live
// substrate — the same machines as real goroutines over the in-memory
// switch — and checks the application's invariants at quiescence. Digests
// are not compared: replay determinism is a sim-only capability.
func runLiveCell(spec apps.AppSpec, c *CellResult) *LiveCellResult {
	out := &LiveCellResult{Cell: c.Cell, Scenario: c.Scenario}
	simCfg := spec.Config(false)
	live, err := substrate.NewLive(substrate.LiveConfig{
		Seed:            c.Seed,
		InitCheckpoint:  simCfg.InitCheckpoint,
		CheckpointEvery: simCfg.CheckpointEvery,
	})
	if err != nil {
		out.Err = err.Error()
		return out
	}
	defer live.Close()
	ms := spec.Make(false)
	ids := make([]string, 0, len(ms))
	for id := range ms {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		live.AddProcess(id, ms[id])
	}
	live.AddProcess(ProbeName, &clockProbe{})
	Schedule{c.Scenario}.Compile(live.Procs()).Apply(live.Injector())
	live.Run()
	for _, v := range fault.NewMonitor(spec.Invariants(false)...).Check(live) {
		out.Violations = append(out.Violations, v.Invariant)
	}
	return out
}

// PipelineResult records one detect → report → recover execution on an
// application's seeded-bug variant.
type PipelineResult struct {
	App         string
	Seed        int64
	Detected    bool // the fault reached the coordinator
	LocalDetect bool // detection came from Context.Fault (vs the global monitor)
	FaultDesc   string
	TrailFound  bool   // the Investigator produced a violation trail
	ReplayClean bool   // the detector's scroll replays without divergence
	HealOK      bool   // the Healer's dynamic update was verified and applied
	Recovered   bool   // the invariants hold after heal + resume
	Digest      string // merged-scroll digest at detection time
}

// Complete reports whether every pipeline stage succeeded.
func (p *PipelineResult) Complete() bool {
	return p.Detected && p.TrailFound && p.ReplayClean && p.HealOK && p.Recovered
}

// RunPipeline executes the full FixD pipeline on the application's
// seeded-bug variant: run until the bug is detected (locally via
// Context.Fault, or — for silently corrupting bugs like the election's
// missing step-down — by the global invariant monitor at quiescence),
// investigate from the assembled recovery line, verify the scroll replays
// the detecting process without divergence, then heal with the corrected
// program and check that the invariants hold after resuming.
func RunPipeline(spec apps.AppSpec, seed int64) *PipelineResult {
	res := &PipelineResult{App: spec.Name, Seed: seed}
	cfg := spec.Config(true)
	cfg.Seed = seed
	cfg.CICheckpoint = true // fine-grained recovery lines for the response
	s := dsim.New(cfg)
	ms := spec.Make(true)
	runner := Runner{Spec: spec, Buggy: true}
	procs := runner.Procs()
	for _, id := range procs {
		s.AddProcess(id, ms[id])
	}
	factories := make(map[string]func() dsim.Machine, len(procs))
	for _, id := range procs {
		id := id
		factories[id] = func() dsim.Machine { return spec.Make(true)[id] }
	}
	invs := spec.Invariants(true)
	coord := core.NewCoordinator(s, factories, core.Config{
		Invariants:                 invs,
		TreatLocalFaultAsViolation: true,
		StopAtFirstViolation:       true,
		MaxStates:                  30_000,
		MaxDepth:                   32,
	})
	s.Run()

	var resp *core.Response
	if rs := coord.Responses(); len(rs) > 0 {
		resp = rs[0]
		res.Detected, res.LocalDetect = true, true
	} else if v := fault.NewMonitor(invs...).Check(s); len(v) > 0 {
		// Silent corruption: the global monitor is the detector; feed its
		// verdict through the same Fig. 4 response protocol.
		f := dsim.FaultRecord{
			Proc: procs[0], Time: s.Now(), Clock: s.Clock(procs[0]),
			Desc: "monitor: " + v[0].Invariant,
		}
		r, err := coord.Respond(f)
		if err == nil {
			resp, res.Detected = r, true
		}
	}
	if resp == nil {
		return res
	}
	res.FaultDesc = resp.Fault.Desc
	res.Digest = scroll.Digest(s.MergedScroll())
	res.TrailFound = resp.Investigation != nil && resp.Investigation.Violating()

	// Report: the detector's scroll must replay its execution without
	// divergence, re-reporting the same local fault (liblog-style).
	detector := resp.Fault.Proc
	if rr, err := dsim.Replay(detector, spec.Make(true)[detector],
		s.Scroll(detector).Records(), cfg.HeapSize, cfg.HeapPageSize); err == nil && !rr.Diverged {
		res.ReplayClean = !res.LocalDetect || len(rr.Faults) > 0
	}

	// Recover: dynamic update with the corrected program at the recovery
	// line, then resume and re-check the invariants.
	if len(resp.Line) == 0 {
		return res
	}
	fixedFactories := make(map[string]func() dsim.Machine, len(procs))
	for _, id := range procs {
		id := id
		fixedFactories[id] = func() dsim.Machine { return spec.MakeFixed()[id] }
	}
	hrep, err := heal.Apply(s, resp.Line, heal.Program{Version: "fixed", Factories: fixedFactories},
		nil, heal.VerifyOptions{Invariants: invs})
	if err != nil || !hrep.Verified() {
		return res
	}
	res.HealOK = true
	s.Resume()
	res.Recovered = len(fault.NewMonitor(invs...).Check(s)) == 0
	return res
}
