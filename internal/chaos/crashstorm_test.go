package chaos

import (
	"sort"
	"testing"

	"repro/internal/apps"
	"repro/internal/fault"
	"repro/internal/substrate"
)

// The crash-storm suite pins the tentpole claim of the stable-storage
// layer: the 2PC coordinator and the KV primary — the two processes the
// registry excluded from crash-restart before they durably logged their
// decisions and version assignments — now survive crash-restart scenarios
// with their invariants intact, on both backends, deterministically.

// crashStormCases names each workload's historically crash-unsafe process.
var crashStormCases = []struct {
	app  string
	proc string
}{
	{"twopc", apps.CoordName},
	{"kvstore", apps.KVPrimaryName},
}

// procIndex returns proc's index in the sorted process list.
func procIndex(t *testing.T, procs []string, proc string) int {
	t.Helper()
	i := sort.SearchStrings(procs, proc)
	if i >= len(procs) || procs[i] != proc {
		t.Fatalf("process %q not in %v", proc, procs)
	}
	return i
}

// TestCrashStormSim: across 50 seeds per workload, a generated crash
// scenario stacked with a forced coordinator/primary crash-restart upholds
// the invariants, deterministically (byte-identical digest on re-run). It
// also checks the generator actually samples the newly crashable targets —
// the scenario class that was structurally unreachable before this layer.
func TestCrashStormSim(t *testing.T) {
	for _, tc := range crashStormCases {
		r, err := RunnerFor(tc.app, false, 1, true)
		if err != nil {
			t.Fatal(err)
		}
		procs := r.Procs()
		crashable := r.Crashable()
		if len(crashable) != len(procs)-1 { // every app process; only the probe stays out
			t.Fatalf("%s: crashable %v does not cover all of %v", tc.app, crashable, procs)
		}
		target := procIndex(t, procs, tc.proc)
		genHits := 0
		horizon := r.Spec.Horizon
		for seed := int64(1); seed <= 50; seed++ {
			r.Seed = seed
			scen := Generate(fault.Crash, procs, crashable, horizon, seed)
			if len(scen.Targets) == 1 && scen.Targets[0] == target {
				genHits++
			}
			from := 5 + uint64(seed)%horizon
			sched := Schedule{
				scen,
				{Kind: fault.Crash, Targets: []int{target},
					Window: Window{From: from, To: from + horizon/3}},
			}.Normalize()
			res := r.Run(sched)
			if len(res.Violations) > 0 {
				t.Fatalf("%s seed %d: crash-restart of %s violated %v under %s",
					tc.app, seed, tc.proc, res.Violations, sched)
			}
			if res.Stats.Crashes == 0 {
				t.Fatalf("%s seed %d: schedule %s crashed nothing", tc.app, seed, sched)
			}
			if again := r.Run(sched); again.Digest != res.Digest {
				t.Fatalf("%s seed %d: crash-restart run is nondeterministic", tc.app, seed)
			}
		}
		if genHits == 0 {
			t.Errorf("%s: 50 generated crash scenarios never targeted %s", tc.app, tc.proc)
		}
	}
}

// TestCrashStormLive re-runs the coordinator/primary crash-restart slice
// on the live substrate — the same machines as real goroutines — checking
// invariants only (replay digests are sim-only).
func TestCrashStormLive(t *testing.T) {
	for _, tc := range crashStormCases {
		var spec apps.AppSpec
		for _, s := range apps.Registry() {
			if s.Name == tc.app {
				spec = s
			}
		}
		for _, seed := range []int64{1, 2} {
			live, err := substrate.NewLive(substrate.LiveConfig{Seed: seed,
				InitCheckpoint: true, CheckpointEvery: 4})
			if err != nil {
				t.Fatal(err)
			}
			ms := spec.Make(false)
			ids := make([]string, 0, len(ms))
			for id := range ms {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			for _, id := range ids {
				live.AddProcess(id, ms[id])
			}
			target := procIndex(t, live.Procs(), tc.proc)
			sched := Schedule{{Kind: fault.Crash, Targets: []int{target},
				Window: Window{From: 6, To: 6 + spec.Horizon/3}}}
			sched.Compile(live.Procs()).Apply(live.Injector())
			stats := live.Run()
			if stats.Crashes == 0 || stats.Restarts == 0 {
				t.Errorf("%s seed %d (live): crashes=%d restarts=%d, want >= 1/1",
					tc.app, seed, stats.Crashes, stats.Restarts)
			}
			var violated []string
			for _, v := range fault.NewMonitor(spec.Invariants(false)...).Check(live) {
				violated = append(violated, v.Invariant)
			}
			if len(violated) > 0 {
				t.Errorf("%s seed %d (live): crash-restart of %s violated %v",
					tc.app, seed, tc.proc, violated)
			}
			live.Close()
		}
	}
}

// TestMatrixSweepsCoordinatorPrimaryCrashes: the stock matrix cells now
// include crash scenarios targeting the coordinator and primary, and those
// cells pass like any other.
func TestMatrixSweepsCoordinatorPrimaryCrashes(t *testing.T) {
	rep := RunMatrix(MatrixConfig{Kinds: []fault.Kind{fault.Crash},
		Seeds: []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}})
	hit := map[string]bool{}
	for _, c := range rep.Cells {
		if !c.Pass() {
			t.Errorf("crash cell %s failed: %s", c.Cell, c.Fail())
		}
		for _, tc := range crashStormCases {
			if c.App != tc.app {
				continue
			}
			r, err := RunnerFor(tc.app, false, c.Seed, true)
			if err != nil {
				t.Fatal(err)
			}
			target := procIndex(t, r.Procs(), tc.proc)
			for _, ti := range c.Scenario.Targets {
				if ti == target {
					hit[tc.proc] = true
				}
			}
		}
	}
	for _, tc := range crashStormCases {
		if !hit[tc.proc] {
			t.Errorf("12-seed crash sweep never targeted %s; widen the seed range", tc.proc)
		}
	}
}

// TestSearchReachesCoordinatorPrimaryCrashes: guided search on the
// correct variants now explores (and admits into its corpus) crash
// schedules targeting the coordinator and primary — the scenario class
// that was structurally unreachable while they were excluded — without
// finding any invariant violation.
func TestSearchReachesCoordinatorPrimaryCrashes(t *testing.T) {
	seeds := map[string]int64{"twopc": 2, "kvstore": 1} // seeds whose trajectories sample the target
	for _, tc := range crashStormCases {
		var spec apps.AppSpec
		for _, s := range apps.Registry() {
			if s.Name == tc.app {
				spec = s
			}
		}
		r := Runner{Spec: spec, Probe: true}
		target := procIndex(t, r.Procs(), tc.proc)
		rep := Search(SearchConfig{Apps: []apps.AppSpec{spec}, Seed: seeds[tc.app],
			Budget: 48, CheckEvery: 256})
		hits := 0
		for _, a := range rep.Apps {
			if len(a.Failures) > 0 {
				t.Errorf("%s: correct-variant search found failures: %v", tc.app, a.Failures[0].Violations)
			}
			for _, e := range a.Corpus {
				for _, sc := range e.Schedule {
					if sc.Kind != fault.Crash {
						continue
					}
					for _, ti := range sc.Targets {
						if ti == target {
							hits++
						}
					}
				}
			}
		}
		if hits == 0 {
			t.Errorf("%s: search corpus holds no crash schedule targeting %s", tc.app, tc.proc)
		}
	}
}

// TestCoordinatorCrashArtifactReplay: a failing run that crash-restarts
// the (buggy) coordinator captures its stable-storage contents in the
// artifact, replays byte-identically through Verify and VerifyWith, and
// the durable contents genuinely participate in the replay contract —
// tampering with them fails verification.
func TestCoordinatorCrashArtifactReplay(t *testing.T) {
	r, err := RunnerFor("twopc", true, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	target := procIndex(t, r.Procs(), apps.CoordName)
	// The buggy coordinator times out at 10 and commits against the slow
	// no-voter's unilateral abort; crash it just after so recovery has a
	// decision to re-install.
	sched := Schedule{{Kind: fault.Crash, Targets: []int{target},
		Window: Window{From: 14, To: 40}}}
	res := r.Run(sched)
	if len(res.Violations) == 0 {
		t.Fatal("buggy twopc under coordinator crash produced no violation")
	}
	if res.Stats.Crashes == 0 || res.Stats.Restarts == 0 {
		t.Fatalf("coordinator never crash-restarted: %+v", res.Stats)
	}
	if string(res.Durable[apps.CoordName]["2pc:decision"]) == "" {
		t.Fatalf("run result carries no coordinator decision cell: %v", res.Durable)
	}

	art := NewArtifact(r, sched, res)
	raw, err := art.JSON()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadArtifact(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Verify(); err != nil {
		t.Fatalf("coordinator-crash artifact failed registry replay: %v", err)
	}
	if err := loaded.VerifyWith(r); err != nil {
		t.Fatalf("coordinator-crash artifact failed VerifyWith replay: %v", err)
	}

	loaded.Durable[apps.CoordName]["2pc:decision"] = []byte("tampered")
	if err := loaded.VerifyWith(r); err == nil {
		t.Fatal("tampered stable-storage contents passed verification")
	}
}
