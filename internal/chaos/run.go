package chaos

import (
	"fmt"
	"sort"

	"repro/internal/apps"
	"repro/internal/dsim"
	"repro/internal/fault"
	"repro/internal/scroll"
)

// RunResult is one deterministic execution of an application under a
// fault schedule.
type RunResult struct {
	Digest      string   // SHA-256 of the merged scroll — the replay fingerprint
	Shape       string   // coarse event-shape signature (scroll.Shape, ShapeBucket windows)
	Violations  []string // global invariants violated at quiescence
	LocalFaults int      // Context.Fault reports during the run
	ProbeFaults int      // clock-probe regressions among them
	Stats       dsim.Stats
	Procs       []string
}

// ShapeBucket is the Lamport window width RunResult.Shape buckets events
// into. One bucket covers a few message round-trips, so the shape captures
// which phase of the run each process was active in without distinguishing
// individual deliveries.
const ShapeBucket = 64

// Violated reports whether the named invariant (or, with an empty name,
// any invariant) was violated.
func (r *RunResult) Violated(name string) bool {
	for _, v := range r.Violations {
		if name == "" || v == name {
			return true
		}
	}
	return false
}

// Runner binds an application spec, variant and seed so fault schedules
// can be executed repeatedly — matrix cells, shrinking iterations and
// artifact replays all go through here.
type Runner struct {
	Spec  apps.AppSpec
	Buggy bool
	Seed  int64
	Probe bool // attach the clock-probe overlay (matrix cells do)
}

// Procs returns the sorted process list a run will have, for target
// resolution before any simulation exists.
func (r Runner) Procs() []string {
	ms := r.Spec.Make(r.Buggy)
	ids := make([]string, 0, len(ms)+1)
	for id := range ms {
		ids = append(ids, id)
	}
	if r.Probe {
		ids = append(ids, ProbeName)
	}
	sort.Strings(ids)
	return ids
}

// Crashable returns the indices of processes eligible for crash-restart
// scenarios (per the spec's CrashOK, always excluding the probe).
func (r Runner) Crashable() []int {
	var out []int
	for i, id := range r.Procs() {
		if id != ProbeName && r.Spec.CrashOK(id) {
			out = append(out, i)
		}
	}
	return out
}

// Run executes the schedule. Identical Runner + schedule ⇒ identical
// RunResult, byte-for-byte: processes are added in sorted order and every
// nondeterministic draw flows through the seeded simulation.
func (r Runner) Run(sched Schedule) *RunResult {
	cfg := r.Spec.Config(r.Buggy)
	cfg.Seed = r.Seed
	s := dsim.New(cfg)
	ms := r.Spec.Make(r.Buggy)
	ids := make([]string, 0, len(ms))
	for id := range ms {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		s.AddProcess(id, ms[id])
	}
	if r.Probe {
		s.AddProcess(ProbeName, &clockProbe{})
	}
	sched.Compile(s.Procs()).Apply(s)
	stats := s.Run()

	res := &RunResult{Stats: stats, Procs: s.Procs()}
	for _, v := range fault.NewMonitor(r.Spec.Invariants(r.Buggy)...).Check(s) {
		res.Violations = append(res.Violations, v.Invariant)
	}
	for _, f := range s.Faults() {
		res.LocalFaults++
		if f.Proc == ProbeName {
			res.ProbeFaults++
		}
	}
	merged := s.MergedScroll()
	res.Digest = scroll.Digest(merged)
	res.Shape = scroll.Shape(merged, ShapeBucket)
	return res
}

// RunnerFor finds the registered application by name.
func RunnerFor(app string, buggy bool, seed int64, probe bool) (Runner, error) {
	for _, spec := range apps.Registry() {
		if spec.Name == app {
			return Runner{Spec: spec, Buggy: buggy, Seed: seed, Probe: probe}, nil
		}
	}
	return Runner{}, fmt.Errorf("chaos: unknown application %q", app)
}
