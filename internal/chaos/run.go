package chaos

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/apps"
	"repro/internal/dsim"
	"repro/internal/fault"
	"repro/internal/scroll"
)

// RunResult is one deterministic execution of an application under a
// fault schedule.
type RunResult struct {
	Digest      string   // SHA-256 of the merged scroll — the replay fingerprint
	Shape       string   // coarse event-shape signature (scroll.Shape, ShapeBucket windows)
	Violations  []string // global invariants violated at quiescence (or at early exit)
	LocalFaults int      // Context.Fault reports during the run
	ProbeFaults int      // clock-probe regressions among them
	Stats       dsim.Stats
	Procs       []string
	// Durable is the stable-storage snapshot at end of run (proc -> cell ->
	// value), captured only for failing runs — its sole consumers are
	// artifact capture and replay verification, and snapshotting every
	// passing run would put a per-run allocation back on the pooled hot
	// path. Deterministic given the cell identity, it pins
	// recovery-dependent outcomes — a crash-restarted coordinator
	// re-installing its logged decision — alongside the scroll digest.
	Durable map[string]map[string][]byte `json:",omitempty"`
	// Epoch is the timeline epoch at end of run: how many deliberate
	// rollbacks (injected Rollback scenarios, heal restores) the run
	// performed. Zero — and omitted from artifacts — for schedules that
	// never roll back, keeping their reports byte-identical to pre-epoch
	// output.
	Epoch uint64 `json:",omitempty"`
}

// ShapeBucket is the Lamport window width RunResult.Shape buckets events
// into. One bucket covers a few message round-trips, so the shape captures
// which phase of the run each process was active in without distinguishing
// individual deliveries.
const ShapeBucket = 64

// Violated reports whether the named invariant (or, with an empty name,
// any invariant) was violated.
func (r *RunResult) Violated(name string) bool {
	for _, v := range r.Violations {
		if name == "" || v == name {
			return true
		}
	}
	return false
}

// Runner binds an application spec, variant and seed so fault schedules
// can be executed repeatedly — matrix cells, shrinking iterations and
// artifact replays all go through here.
type Runner struct {
	Spec  apps.AppSpec
	Buggy bool
	Seed  int64
	Probe bool // attach the clock-probe overlay (matrix cells do)

	// CheckEvery enables early-exit invariant monitoring: every CheckEvery
	// processed simulation steps the application's global invariants are
	// evaluated, and the run halts (Stats.EarlyExit) as soon as one is
	// violated instead of burning the remaining step budget. 0 checks only
	// at quiescence — the classic behavior. Early exit changes what the
	// run executes (shorter scroll, different digest), so it is a run
	// parameter: artifacts record it, and replays must use the same value.
	CheckEvery uint64

	// Baseline selects the pre-pooling reference path: a fresh simulation
	// per run and batch fingerprinting over the materialized merged scroll.
	// Results are byte-identical to the pooled path (the runtime benchmark
	// and TestRunnerPathEquivalence depend on that); it exists only to
	// measure what pooling buys and as an executable specification.
	Baseline bool

	// Legacy disables timeline-epoch fencing (dsim.Config.LegacyTimelines),
	// restoring the pre-fix rollback semantics. Like Baseline it is an
	// in-binary executable record: the heal × crash storm regression flips
	// it to reproduce the stale-durable re-installation bug the timeline
	// epoch fixed, and to prove the fenced path eliminates it.
	Legacy bool
}

// Procs returns the sorted process list a run will have, for target
// resolution before any simulation exists.
func (r Runner) Procs() []string {
	ms := r.Spec.Make(r.Buggy)
	ids := make([]string, 0, len(ms)+1)
	for id := range ms {
		ids = append(ids, id)
	}
	if r.Probe {
		ids = append(ids, ProbeName)
	}
	sort.Strings(ids)
	return ids
}

// Crashable returns the indices of processes eligible for crash-restart
// scenarios (per the spec's CrashOK, always excluding the probe).
func (r Runner) Crashable() []int {
	var out []int
	for i, id := range r.Procs() {
		if id != ProbeName && r.Spec.CrashOK(id) {
			out = append(out, i)
		}
	}
	return out
}

// runArena is the per-worker scratch a pooled run reuses: the simulation
// (event arena, process heaps, scroll buffers) and the streaming
// fingerprinter. Runner.Run checks arenas out of a sync.Pool, so each
// worker of a matrix or search pool settles on its own arena instead of
// paying a fresh simulation per run.
type runArena struct {
	sim *dsim.Sim
	fp  scroll.Fingerprinter
}

var arenaPool = sync.Pool{}

// Run executes the schedule. Identical Runner + schedule ⇒ identical
// RunResult, byte-for-byte: processes are added in sorted order, every
// nondeterministic draw flows through the seeded simulation, and a Reset
// arena is observationally identical to a fresh one.
func (r Runner) Run(sched Schedule) *RunResult {
	cfg := r.Spec.Config(r.Buggy)
	cfg.Seed = r.Seed
	cfg.LegacyTimelines = r.Legacy
	if r.Baseline {
		return r.finish(sched, dsim.New(cfg), nil)
	}
	a, _ := arenaPool.Get().(*runArena)
	if a == nil {
		a = &runArena{sim: dsim.New(cfg)}
	} else {
		a.sim.Reset(cfg)
	}
	res := r.finish(sched, a.sim, a)
	arenaPool.Put(a)
	return res
}

// finish populates the simulation, executes the schedule and fingerprints
// the outcome. With a nil arena it is the baseline path: batch
// fingerprints over the materialized merged scroll.
func (r Runner) finish(sched Schedule, s *dsim.Sim, a *runArena) *RunResult {
	ms := r.Spec.Make(r.Buggy)
	ids := make([]string, 0, len(ms))
	for id := range ms {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		s.AddProcess(id, ms[id])
	}
	if r.Probe {
		s.AddProcess(ProbeName, &clockProbe{})
	}
	sched.Compile(s.Procs()).Apply(s)
	mon := fault.NewMonitor(r.Spec.Invariants(r.Buggy)...)
	if r.CheckEvery > 0 {
		s.SetStepMonitor(r.CheckEvery, func() bool { return mon.AnyViolated(s) })
	}
	stats := s.Run()

	res := &RunResult{Stats: stats, Procs: s.Procs(), Epoch: s.Epoch()}
	for _, v := range mon.Check(s) {
		res.Violations = append(res.Violations, v.Invariant)
	}
	if len(res.Violations) > 0 {
		res.Durable = s.DurableSnapshot()
	}
	for _, f := range s.Faults() {
		res.LocalFaults++
		if f.Proc == ProbeName {
			res.ProbeFaults++
		}
	}
	if a != nil {
		res.Digest, res.Shape = a.fp.Fingerprint(s.Scrolls(), ShapeBucket)
	} else {
		merged := s.MergedScroll()
		res.Digest = scroll.Digest(merged)
		res.Shape = scroll.Shape(merged, ShapeBucket)
	}
	return res
}

// RunnerFor finds the registered application by name — matrix registry
// first, then the scenario zoo, so zoo artifacts replay through the same
// path as matrix ones.
func RunnerFor(app string, buggy bool, seed int64, probe bool) (Runner, error) {
	spec, err := apps.Lookup(app)
	if err != nil {
		return Runner{}, fmt.Errorf("chaos: unknown application %q", app)
	}
	return Runner{Spec: spec, Buggy: buggy, Seed: seed, Probe: probe}, nil
}
