package chaos

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sort"

	"repro/internal/fault"
)

// ShrinkResult is the outcome of minimizing a failing schedule.
type ShrinkResult struct {
	Schedule Schedule // the minimized schedule (still failing)
	Runs     int      // executions spent
	Minimal  bool     // removing any single scenario makes the failure vanish
}

// Shrink minimizes a failing fault schedule: first classic ddmin over the
// scenario list (Zeller's delta debugging, reducing to a 1-minimal
// subsequence), then per-scenario attribute shrinking that halves windows
// and intensities while the failure persists, and finally target-set
// shrinking that drops individual processes from each scenario's
// partition/target group one at a time. fails must be a deterministic
// predicate — with a seeded Runner it always is — and budget bounds the
// total number of executions.
func Shrink(sched Schedule, fails func(Schedule) bool, budget int) *ShrinkResult {
	res := &ShrinkResult{Schedule: sched}
	exhausted := false
	try := func(c Schedule) bool {
		if res.Runs >= budget {
			exhausted = true
			return false
		}
		res.Runs++
		return fails(c)
	}
	if len(sched) == 0 || !try(sched) {
		return res // nothing to shrink, or the input does not fail
	}
	cur := sched

	// Phase 1: ddmin on the scenario list. Complements are tried at
	// doubling granularity; termination with singleton complements all
	// passing means no single scenario can be removed — 1-minimality.
	n := 2
	for len(cur) >= 2 && n <= len(cur) {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for i := 0; i < len(cur); i += chunk {
			end := min(i+chunk, len(cur))
			comp := append(append(Schedule{}, cur[:i]...), cur[end:]...)
			if len(comp) > 0 && try(comp) {
				cur, reduced = comp, true
				n = max(n-1, 2)
				break
			}
		}
		if !reduced {
			if n >= len(cur) {
				// Every singleton complement was actually executed and
				// passed — unless the budget gate short-circuited them.
				res.Minimal = !exhausted
				break
			}
			n = min(len(cur), 2*n)
		}
	}
	if !res.Minimal && len(cur) == 1 {
		// A single surviving scenario is minimal iff the failure needs it
		// at all (the empty schedule passes).
		res.Minimal = !try(Schedule{}) && !exhausted
	}

	// Phase 2: attribute shrinking — smallest window and intensity that
	// still reproduce the failure.
	shrinkAttr := func(i int, mutate func(*Scenario) bool) {
		for {
			cand := append(Schedule{}, cur...)
			sc := cand[i]
			if !mutate(&sc) {
				return
			}
			cand[i] = sc
			if !try(cand) {
				return
			}
			cur = cand
		}
	}
	halve := func(v uint64, floor uint64) (uint64, bool) {
		if v/2 < floor {
			return v, false
		}
		return v / 2, true
	}
	for i := range cur {
		shrinkAttr(i, func(sc *Scenario) bool {
			l, ok := halve(sc.Window.Len(), 1)
			sc.Window.To = sc.Window.From + l
			return ok
		})
		switch cur[i].Kind {
		case fault.Delay, fault.SlowNode:
			shrinkAttr(i, func(sc *Scenario) bool {
				var ok bool
				sc.Intensity.Extra, ok = halve(sc.Intensity.Extra, 1)
				return ok
			})
		case fault.Reorder:
			shrinkAttr(i, func(sc *Scenario) bool {
				var ok bool
				sc.Intensity.Jitter, ok = halve(sc.Intensity.Jitter, 1)
				return ok
			})
		case fault.Duplicate, fault.Drop, fault.Corrupt:
			shrinkAttr(i, func(sc *Scenario) bool {
				if sc.Intensity.Prob/2 < 0.05 {
					return false
				}
				sc.Intensity.Prob /= 2
				return true
			})
		case fault.ClockSkew:
			shrinkAttr(i, func(sc *Scenario) bool {
				s := sc.Intensity.Skew / 2
				if s == 0 {
					return false
				}
				sc.Intensity.Skew = s
				return true
			})
		case fault.Restart:
			// Restart is not a scenario kind: Compile emits it from Crash
			// windows and validScenarioKind rejects it, so shrink never
			// sees one. Listed so kindswitch keeps this table exhaustive.
		case fault.Crash, fault.Partition, fault.Rollback:
			// No intensity to shrink; the remaining attribute is onset. Halve
			// Window.From toward the run's start, keeping the length, so a
			// minimized crash still restarts after the same outage (and a
			// rollback point event moves to the earliest reproducing time).
			// Floor 1, not 0: halve(0, 0) would "succeed" in place forever
			// and burn the whole budget without progress.
			shrinkAttr(i, func(sc *Scenario) bool {
				f, ok := halve(sc.Window.From, 1)
				if !ok {
					return false
				}
				l := sc.Window.Len()
				sc.Window.From = f
				sc.Window.To = f + l
				return true
			})
		}
	}

	// Phase 3: target-set shrinking — drop individual processes from each
	// scenario's target group one at a time while the failure persists.
	// Sets never shrink below one member: for message-level kinds an empty
	// target list means "all processes", which would *widen* the scenario.
	for i := range cur {
		for j := 0; j < len(cur[i].Targets) && len(cur[i].Targets) > 1; {
			cand := append(Schedule{}, cur...)
			sc := cand[i]
			sc.Targets = append(append([]int{}, sc.Targets[:j]...), sc.Targets[j+1:]...)
			cand[i] = sc
			if try(cand) {
				cur = cand // target j removed; the next candidate shifts into j
			} else {
				j++
			}
		}
	}
	res.Schedule = cur
	return res
}

// Artifact is a replayable counterexample: everything needed to reproduce
// a failing chaos run byte-for-byte through the registered applications.
type Artifact struct {
	App        string
	Buggy      bool
	Probe      bool
	Seed       int64
	Schedule   Schedule
	Violations []string // invariant names the run violates
	Digest     string   // expected merged-scroll digest
	// CheckEvery is the early-exit invariant cadence the failing run used
	// (see Runner.CheckEvery). Early exit shortens the execution, so the
	// recorded digest is only reproducible at the same cadence; Replay
	// restores it. Omitted (0) for classic run-to-quiescence artifacts, so
	// pre-existing artifacts decode unchanged.
	CheckEvery uint64 `json:",omitempty"`
	// Durable is the failing run's stable-storage snapshot (proc -> cell ->
	// value). Stable storage feeds crash-restart recovery, so a replay that
	// reproduces the digest must also reproduce these contents exactly —
	// check enforces it. Omitted when the run wrote none, so pre-existing
	// artifacts decode unchanged.
	Durable map[string]map[string][]byte `json:",omitempty"`
}

// NewArtifact captures a failing run as a replayable artifact.
func NewArtifact(r Runner, sched Schedule, res *RunResult) *Artifact {
	return &Artifact{
		App: r.Spec.Name, Buggy: r.Buggy, Probe: r.Probe, Seed: r.Seed,
		Schedule: sched, Violations: res.Violations, Digest: res.Digest,
		CheckEvery: r.CheckEvery, Durable: res.Durable,
	}
}

// JSON serializes the artifact.
func (a *Artifact) JSON() ([]byte, error) { return json.MarshalIndent(a, "", "  ") }

// LoadArtifact parses an artifact produced by JSON.
func LoadArtifact(b []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(b, &a); err != nil {
		return nil, fmt.Errorf("chaos: bad artifact: %w", err)
	}
	return &a, nil
}

// Replay re-executes the artifact's schedule on its registered
// application and seed.
func (a *Artifact) Replay() (*RunResult, error) {
	runner, err := RunnerFor(a.App, a.Buggy, a.Seed, a.Probe)
	if err != nil {
		return nil, err
	}
	runner.CheckEvery = a.CheckEvery
	return runner.Run(a.Schedule), nil
}

// Verify replays the artifact and checks that it reproduces the recorded
// violations and scroll digest exactly. It resolves the application
// through the registry; for a run under a customized spec use VerifyWith.
func (a *Artifact) Verify() error {
	res, err := a.Replay()
	if err != nil {
		return err
	}
	return a.check(res)
}

// VerifyWith replays the artifact on the given runner (which must match
// the one that produced it; the recorded early-exit cadence is restored
// onto it) and checks the recorded outcome.
func (a *Artifact) VerifyWith(r Runner) error {
	r.CheckEvery = a.CheckEvery
	return a.check(r.Run(a.Schedule))
}

func (a *Artifact) check(res *RunResult) error {
	if res.Digest != a.Digest {
		short := func(d string) string {
			if len(d) > 12 {
				return d[:12]
			}
			return d
		}
		return fmt.Errorf("chaos: replay digest %q != recorded %q", short(res.Digest), short(a.Digest))
	}
	if !reflect.DeepEqual(res.Violations, a.Violations) {
		return fmt.Errorf("chaos: replay violations %v != recorded %v", res.Violations, a.Violations)
	}
	if !reflect.DeepEqual(res.Durable, a.Durable) {
		return fmt.Errorf("chaos: replay stable-storage contents differ from recorded: %s",
			durableDiff(res.Durable, a.Durable))
	}
	return nil
}

// durableDiff names the first differing proc/cell between two snapshots,
// in sorted order so the message is deterministic.
func durableDiff(got, want map[string]map[string][]byte) string {
	procs := map[string]bool{}
	for p := range got {
		procs[p] = true
	}
	for p := range want {
		procs[p] = true
	}
	sorted := make([]string, 0, len(procs))
	for p := range procs {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	for _, p := range sorted {
		g, w := got[p], want[p]
		cells := map[string]bool{}
		for k := range g {
			cells[k] = true
		}
		for k := range w {
			cells[k] = true
		}
		ck := make([]string, 0, len(cells))
		for k := range cells {
			ck = append(ck, k)
		}
		sort.Strings(ck)
		for _, k := range ck {
			if string(g[k]) != string(w[k]) {
				return fmt.Sprintf("proc %s cell %q: replay %q, recorded %q", p, k, g[k], w[k])
			}
		}
	}
	return "snapshots differ only in cell presence shape"
}
