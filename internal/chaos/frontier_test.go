package chaos

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

// TestFrontierPreRefactorByteIdentity pins the Frontier extraction against
// reports recorded by the pre-refactor Search/RandomSearch implementations
// (testdata/search_prerefactor.json, generated at the commit that
// introduced the frontier): the shared candidate stream must consume the
// seeded rng in exactly the original order, so guided and random reports —
// corpus, growth curves, shrunk failures, artifacts — stay byte-identical.
// The fixture is re-baselined (FIXD_REGEN_FIXTURES=1) when workload-app
// behavior changes on purpose; between re-baselines it pins search-driver
// refactors.
func TestFrontierPreRefactorByteIdentity(t *testing.T) {
	cfg := SearchConfig{Seed: 7, Budget: 24, Workers: 2, CheckEvery: 64}
	buggy := cfg
	buggy.Buggy = true
	got := map[string]*SearchReport{
		"guided":       Search(cfg),
		"random":       RandomSearch(cfg),
		"guided_buggy": Search(buggy),
		"random_buggy": RandomSearch(buggy),
	}
	out, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, '\n')
	if os.Getenv("FIXD_REGEN_FIXTURES") != "" {
		if err := os.WriteFile("testdata/search_prerefactor.json", out, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("rewrote testdata/search_prerefactor.json")
		return
	}
	raw, err := os.ReadFile("testdata/search_prerefactor.json")
	if err != nil {
		t.Fatalf("missing pre-refactor fixture: %v", err)
	}
	if !bytes.Equal(out, raw) {
		line := 1
		for i := 0; i < len(out) && i < len(raw); i++ {
			if out[i] != raw[i] {
				lo, hi := max(0, i-80), min(len(out), i+80)
				t.Fatalf("report diverges from pre-refactor fixture at byte %d (line %d):\n...%s...",
					i, line, out[lo:hi])
			}
			if out[i] == '\n' {
				line++
			}
		}
		t.Fatalf("report length %d != fixture length %d", len(out), len(raw))
	}
}

// TestFrontierDriveMatchesSearch exercises the frontier protocol directly —
// the way the fleet coordinator consumes it, with an externally supplied
// evaluator and an external shrink delegate — and requires the outcome to
// be byte-identical to the packaged Search driver.
func TestFrontierDriveMatchesSearch(t *testing.T) {
	cfg := SearchConfig{Seed: 3, Budget: 20, Buggy: true, CheckEvery: 64}
	cfg = cfg.withDefaults()
	want := Search(cfg)

	rep := &SearchReport{Strategy: string(StrategyGuided), Seed: cfg.Seed, Budget: cfg.Budget, Buggy: cfg.Buggy}
	for _, spec := range cfg.Apps {
		f := NewFrontier(spec, cfg, StrategyGuided)
		runner := f.Runner()
		// External shrink delegate, as a fleet worker would run it.
		f.SetShrinker(LocalShrinker(runner, cfg.ShrinkBudget))
		for batch := f.NextBatch(); len(batch) > 0; batch = f.NextBatch() {
			// Evaluate out of order to prove admission order is what counts.
			results := make([]*RunResult, len(batch))
			for i := len(batch) - 1; i >= 0; i-- {
				results[i] = runner.Run(batch[i].Schedule)
			}
			for i := range batch {
				f.Admit(batch[i], results[i])
			}
		}
		rep.Apps = append(rep.Apps, f.Finish())
	}

	gotJSON, _ := json.Marshal(rep)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatal("frontier-driven report differs from Search report")
	}
}
