package analysis

import (
	"go/ast"
)

// Detwall forbids ambient-input reads — wall clocks, the global math/rand
// generator, environment variables, host CPU topology — inside the
// deterministic core. Every value a machine observes must flow from the
// seeded simulation (Context.Now/Random, the substrate tick) or the run
// configuration; an ambient read is a replay-divergence bug that no seed
// sweep is guaranteed to catch. Seeded rand.New(rand.NewSource(seed)) is
// fine and common; the global top-level rand functions are not.
//
// Intentional sites (the live backend's wall-clock bridge, bench timing
// in internal/experiments) carry //fixd:wallclock <reason>.
var Detwall = &Analyzer{
	Name: "detwall",
	Doc:  "forbid wall-clock, global-rand, env, and CPU-topology reads in the deterministic core",
	Run:  runDetwall,
}

// detwallForbidden maps package path -> selected name -> why it is
// nondeterministic. Referencing the name at all is flagged (passing
// time.Now as a function value is as nondeterministic as calling it).
var detwallForbidden = map[string]map[string]string{
	"time": {
		"Now": "reads the wall clock", "Since": "reads the wall clock",
		"Until": "reads the wall clock", "Sleep": "blocks on the wall clock",
		"After": "arms a wall-clock timer", "Tick": "arms a wall-clock timer",
		"NewTimer": "arms a wall-clock timer", "NewTicker": "arms a wall-clock timer",
		"AfterFunc": "arms a wall-clock timer",
	},
	"math/rand": {
		"Int": "draws from the unseeded global generator", "Intn": "draws from the unseeded global generator",
		"Int31": "draws from the unseeded global generator", "Int31n": "draws from the unseeded global generator",
		"Int63": "draws from the unseeded global generator", "Int63n": "draws from the unseeded global generator",
		"Uint32": "draws from the unseeded global generator", "Uint64": "draws from the unseeded global generator",
		"Float32": "draws from the unseeded global generator", "Float64": "draws from the unseeded global generator",
		"ExpFloat64": "draws from the unseeded global generator", "NormFloat64": "draws from the unseeded global generator",
		"Perm": "draws from the unseeded global generator", "Shuffle": "draws from the unseeded global generator",
		"Read": "draws from the unseeded global generator", "Seed": "reseeds the shared global generator",
	},
	"math/rand/v2": {
		"Int": "draws from the shared global generator", "IntN": "draws from the shared global generator",
		"Int32": "draws from the shared global generator", "Int32N": "draws from the shared global generator",
		"Int64": "draws from the shared global generator", "Int64N": "draws from the shared global generator",
		"Uint32": "draws from the shared global generator", "Uint32N": "draws from the shared global generator",
		"Uint64": "draws from the shared global generator", "Uint64N": "draws from the shared global generator",
		"UintN": "draws from the shared global generator", "N": "draws from the shared global generator",
		"Float32": "draws from the shared global generator", "Float64": "draws from the shared global generator",
		"ExpFloat64": "draws from the shared global generator", "NormFloat64": "draws from the shared global generator",
		"Perm": "draws from the shared global generator", "Shuffle": "draws from the shared global generator",
	},
	"os": {
		"Getenv": "reads the ambient environment", "LookupEnv": "reads the ambient environment",
		"Environ": "reads the ambient environment", "Hostname": "reads the ambient host identity",
		"Getpid": "reads the ambient process identity", "Getppid": "reads the ambient process identity",
	},
	"runtime": {
		"NumCPU": "reads host CPU topology", "GOMAXPROCS": "reads/writes host scheduler width",
		"NumGoroutine": "reads ambient scheduler state",
	},
	"crypto/rand": {
		"Read": "draws true randomness", "Int": "draws true randomness",
		"Prime": "draws true randomness", "Text": "draws true randomness",
	},
}

func runDetwall(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, name, ok := selectorPkgFunc(pass.Info, sel)
			if !ok {
				return true
			}
			if why, bad := detwallForbidden[path][name]; bad {
				pass.Reportf(sel.Pos(), "%s.%s %s — deterministic code must take time/randomness/config from the seeded substrate (annotate intentional sites: //fixd:wallclock <reason>)",
					lastPathElem(path), name, why)
			}
			return true
		})
	}
	return nil
}

func lastPathElem(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
