package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one analyzer finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one determinism check. Run inspects a single type-checked
// package and reports findings through the pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, JSON output, and
	// testdata fixture directories.
	Name string
	// Doc is a one-line description of what the analyzer guards.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked representation
// through an analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunAnalyzer executes one analyzer over one loaded package and returns
// its diagnostics sorted by position. Annotation suppression is NOT
// applied here — that is the driver's job (see Suite.Run) — so tests can
// observe raw findings.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	SortDiagnostics(pass.diags)
	return pass.diags, nil
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// pkgNameOf resolves the package an identifier refers to when the
// identifier is the qualifier of a selector expression (e.g. the "time"
// in time.Now). Returns nil when id is not a package name.
func pkgNameOf(info *types.Info, id *ast.Ident) *types.PkgName {
	if obj, ok := info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn
		}
	}
	return nil
}

// selectorPkgFunc splits a qualified reference pkg.Name into the imported
// package path and selected name, or returns ok=false when the expression
// is not a package-qualified selector.
func selectorPkgFunc(info *types.Info, sel *ast.SelectorExpr) (path, name string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn := pkgNameOf(info, id)
	if pn == nil {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}
