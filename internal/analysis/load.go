package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("repro/internal/dsim")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files, with comments
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module using only the
// standard library: module-internal imports are resolved against the
// module root, everything else (the standard library) through go/importer's
// source importer. The module stays zero-dep — no go/packages, no vendoring.
type Loader struct {
	ModuleRoot string
	ModulePath string

	fset  *token.FileSet
	std   types.Importer
	cache map[string]*Package       // loaded module packages by import path
	deps  map[string]*types.Package // resolved imports by path (module + std)
}

// NewLoader returns a loader rooted at the module directory containing
// go.mod. The module path is read from go.mod's module directive.
func NewLoader(moduleRoot string) (*Loader, error) {
	abs, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: module root %s: %w", abs, err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", abs)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: abs,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      make(map[string]*Package),
		deps:       make(map[string]*types.Package),
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer: module-internal paths load from the
// module tree, everything else delegates to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.deps[path]; ok {
		return p, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.ModuleRoot, rel), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	p, err := l.std.Import(path)
	if err != nil {
		return nil, err
	}
	l.deps[path] = p
	return p, nil
}

// LoadDir parses and type-checks the single package in dir under the
// given import path. Results are cached by import path, so diamond
// imports type-check once. Test files are excluded: the analyzers guard
// production code; tests legitimately use wall clocks and goroutines.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: %s: no buildable Go files in %s", path, dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.cache[path] = pkg
	l.deps[path] = tpkg
	return pkg, nil
}

// Load resolves the given patterns into packages. Supported patterns:
// "./..." (every package under the module root), "./dir/..." (every
// package under dir), and plain directories ("./internal/dsim",
// "internal/dsim"). Recursive patterns skip testdata, hidden, and
// vendor directories; naming a testdata directory explicitly loads it —
// that is how the CLI and CI point the suite at dirty fixtures.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			expanded, err := l.expand(l.ModuleRoot)
			if err != nil {
				return nil, err
			}
			for _, d := range expanded {
				add(d)
			}
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Join(l.ModuleRoot, strings.TrimSuffix(pat, "/..."))
			expanded, err := l.expand(root)
			if err != nil {
				return nil, err
			}
			for _, d := range expanded {
				add(d)
			}
		default:
			d := pat
			if !filepath.IsAbs(d) {
				d = filepath.Join(l.ModuleRoot, pat)
			}
			add(filepath.Clean(d))
		}
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		path, err := l.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// expand walks root collecting every directory holding at least one
// non-test Go file, skipping testdata, vendor, and hidden directories.
func (l *Loader) expand(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range ents {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				out = append(out, p)
				break
			}
		}
		return nil
	})
	return out, err
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module root %s", dir, l.ModuleRoot)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}
