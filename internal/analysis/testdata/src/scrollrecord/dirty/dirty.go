// Package dirty holds a dsim.Context implementation that skips scroll
// appends on some return paths — the recording bugs scrollrecord exists
// to catch, each of which would surface later as a replay divergence.
package dirty

import (
	"encoding/binary"

	"repro/internal/checkpoint"
	"repro/internal/dsim"
	"repro/internal/scroll"
)

type leakyCtx struct {
	id  string
	sc  *scroll.Scroll
	now uint64
	rng uint64
}

var _ dsim.Context = (*leakyCtx)(nil)

func (c *leakyCtx) record(k scroll.Kind, payload []byte) {
	c.sc.Append(scroll.Record{Proc: c.id, Kind: k, Payload: payload})
}

func (c *leakyCtx) Self() string { return c.id }

// Now skips the scroll append entirely: replay cannot feed this read back.
func (c *leakyCtx) Now() uint64 { return c.now }

// Random records on the even branch only — the odd-path draw is invisible
// to replay.
func (c *leakyCtx) Random() uint64 {
	c.rng++
	if c.rng%2 == 0 {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], c.rng)
		c.record(scroll.KindRandom, b[:])
		return c.rng
	}
	return c.rng
}

// Send falls off the end of a void method without recording.
func (c *leakyCtx) Send(to string, payload []byte) {
	_ = to
	_ = payload
}

func (c *leakyCtx) SetTimer(string, uint64) {}
func (c *leakyCtx) Heap() *checkpoint.Heap  { return nil }

func (c *leakyCtx) DurablePut(key string, value []byte) {
	c.record(scroll.KindEnv, value)
}

func (c *leakyCtx) DurableGet(key string) ([]byte, bool) {
	c.record(scroll.KindEnv, nil)
	return nil, false
}

func (c *leakyCtx) DurableKeys() []string {
	c.record(scroll.KindEnv, nil)
	return nil
}

func (c *leakyCtx) Log(string, ...any)               {}
func (c *leakyCtx) Fault(string)                     {}
func (c *leakyCtx) Checkpoint(string) string         { return "" }
func (c *leakyCtx) Speculate(string) (string, error) { return "", nil }
func (c *leakyCtx) Commit(string) error              { return nil }
func (c *leakyCtx) AbortSpec(string, string) error   { return nil }
func (c *leakyCtx) Halt()                            {}
