// Package clean is the silent twin of the scrollrecord dirty fixture: a
// Context implementation that appends a scroll record on every return
// path of every recorded operation, plus one method excused by the
// method-level annotation escape.
package clean

import (
	"encoding/binary"

	"repro/internal/checkpoint"
	"repro/internal/dsim"
	"repro/internal/scroll"
)

type tightCtx struct {
	id  string
	sc  *scroll.Scroll
	now uint64
	rng uint64
}

var _ dsim.Context = (*tightCtx)(nil)

func (c *tightCtx) record(k scroll.Kind, payload []byte) {
	c.sc.Append(scroll.Record{Proc: c.id, Kind: k, Payload: payload})
}

func u64(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

func (c *tightCtx) Self() string { return c.id }

func (c *tightCtx) Now() uint64 {
	c.record(scroll.KindTime, u64(c.now))
	return c.now
}

// Random records before either branch returns.
func (c *tightCtx) Random() uint64 {
	c.rng++
	c.record(scroll.KindRandom, u64(c.rng))
	if c.rng%2 == 0 {
		return c.rng
	}
	return c.rng + 1
}

func (c *tightCtx) Send(to string, payload []byte) {
	c.record(scroll.KindSend, payload)
	_ = to
}

func (c *tightCtx) SetTimer(string, uint64) {}
func (c *tightCtx) Heap() *checkpoint.Heap  { return nil }

func (c *tightCtx) DurablePut(key string, value []byte) {
	c.record(scroll.KindEnv, value)
	_ = key
}

// DurableGet is excused by the method-level escape the replayer and the
// investigator sandbox use.
//
//fixd:nondeterm fixture: models the read locally, mirroring sandboxCtx
func (c *tightCtx) DurableGet(key string) ([]byte, bool) {
	_ = key
	return nil, false
}

func (c *tightCtx) DurableKeys() []string {
	c.record(scroll.KindEnv, nil)
	return nil
}

func (c *tightCtx) Log(string, ...any)               {}
func (c *tightCtx) Fault(string)                     {}
func (c *tightCtx) Checkpoint(string) string         { return "" }
func (c *tightCtx) Speculate(string) (string, error) { return "", nil }
func (c *tightCtx) Commit(string) error              { return nil }
func (c *tightCtx) AbortSpec(string, string) error   { return nil }
func (c *tightCtx) Halt()                            {}
