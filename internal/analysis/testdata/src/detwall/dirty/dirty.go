// Package dirty is an intentionally nondeterministic detwall fixture:
// every ambient read below must be flagged. The meta-test in
// internal/analysis compares the suite's output against expect.txt, and
// CI runs fixd-lint on this package asserting a non-zero exit.
package dirty

import (
	"math/rand"
	"os"
	"runtime"
	"time"
)

// Stamp reads ambient inputs the deterministic core must never touch.
func Stamp() string {
	t := time.Now()
	n := rand.Intn(10)
	host := os.Getenv("HOSTNAME")
	cpus := runtime.NumCPU()
	time.Sleep(time.Millisecond)
	return t.String() + host + string(rune('0'+n)) + string(rune('0'+cpus%10))
}

// Bare reads the clock under an annotation missing its reason — the
// annotation is itself a diagnostic and must NOT suppress the read.
func Bare() int64 {
	return time.Now().UnixNano() //fixd:wallclock
}
