// Package clean is the silent twin of the detwall dirty fixture: seeded
// randomness, injected time, and a properly annotated intentional read.
// The suite must emit zero diagnostics here.
package clean

import (
	"math/rand"
	"time"
)

// Seeded draws from an explicitly seeded source — allowed: the seed is an
// input, so the stream is reproducible.
func Seeded(seed int64) uint64 {
	r := rand.New(rand.NewSource(seed))
	return uint64(r.Int63())
}

// Elapsed computes with injected instants instead of reading the clock.
func Elapsed(from, to time.Time) time.Duration {
	return to.Sub(from)
}

// Annotated reads the clock intentionally, with an audited reason.
func Annotated() int64 {
	return time.Now().UnixNano() //fixd:wallclock fixture: audited intentional wall read
}
