// Package dirty seeds non-exhaustive enum switches for the kindswitch
// fixture — the PR 9 rollout hazard (a new fault.Kind silently skipped by
// an unupdated switch) reproduced in miniature.
package dirty

import "repro/internal/fault"

// Describe covers two kinds, no default: every other Kind falls through
// silently, which is exactly what kindswitch exists to catch.
func Describe(k fault.Kind) string {
	switch k {
	case fault.Crash:
		return "crash"
	case fault.Delay:
		return "delay"
	}
	return "unhandled"
}
