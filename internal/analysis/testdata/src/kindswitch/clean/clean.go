// Package clean is the silent twin of the kindswitch dirty fixture: one
// switch made safe by a default clause, one by exhaustive cases.
package clean

import "repro/internal/fault"

// Describe handles every future Kind through its default clause.
func Describe(k fault.Kind) string {
	switch k {
	case fault.Crash:
		return "crash"
	default:
		return "other"
	}
}

// Message reports whether a kind acts on individual messages, listing
// every constant explicitly.
func Message(k fault.Kind) bool {
	switch k {
	case fault.Delay, fault.Reorder, fault.Duplicate, fault.Drop, fault.Corrupt:
		return true
	case fault.Crash, fault.Restart, fault.Partition, fault.ClockSkew,
		fault.Rollback, fault.SlowNode:
		return false
	}
	return false
}
