// Package clean is the silent twin of the detgoroutine dirty fixture:
// the same fan-out computed single-threaded in deterministic order.
package clean

// Fan sums work sequentially — the simulation core's only legal shape.
func Fan(work []int) int {
	sum := 0
	for _, w := range work {
		sum += w
	}
	return sum
}

// Queue models event dispatch with a slice, not a channel.
func Queue(events []string) []string {
	out := make([]string, 0, len(events))
	for _, e := range events {
		out = append(out, e)
	}
	return out
}
