// Package dirty seeds concurrency constructs for the detgoroutine
// fixture: everything here would hand machine scheduling to the Go
// runtime and break byte-identical replay.
package dirty

import (
	"sync"
	"sync/atomic"
)

// Fan runs work on goroutines coordinated by channels and sync — all of
// it forbidden in the simulation core.
func Fan(work []int) int {
	ch := make(chan int)
	var wg sync.WaitGroup
	var total uint64
	for _, w := range work {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			atomic.AddUint64(&total, uint64(w))
			ch <- w
		}(w)
	}
	sum := 0
	for range work {
		sum += <-ch
	}
	wg.Wait()
	return sum + int(total)
}

// Pick lets the runtime choose a case — unordered, unreplayable.
func Pick(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
