// Package clean is the silent twin of the detmaprange dirty fixture:
// the collect-keys-then-sort idiom and order-insensitive per-key writes.
package clean

import "sort"

// Sorted iterates keys in deterministic order — the one safe idiom.
func Sorted(m map[string]int) []int {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// Copy builds fresh per-key value copies — no cross-iteration
// accumulation, so map order cannot leak into the result.
func Copy(m map[string][]byte) map[string][]byte {
	out := make(map[string][]byte, len(m))
	for k, v := range m {
		out[k] = append([]byte(nil), v...)
	}
	return out
}
