// Package dirty seeds the classic digest-divergence bug for the
// detmaprange fixture: map iteration feeding order-sensitive sinks.
package dirty

import (
	"encoding/json"
	"fmt"
	"io"
)

// Flatten appends map values in iteration order — Go randomizes that
// order, so the slice differs across runs.
func Flatten(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// Dump marshals and prints entries in iteration order.
func Dump(w io.Writer, m map[string]string) {
	for k, v := range m {
		b, _ := json.Marshal(v)
		fmt.Fprintf(w, "%s=%s\n", k, b)
	}
}
