package analysis

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// moduleRoot is the repo root (this package lives at internal/analysis).
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root %s: %v", root, err)
	}
	return root
}

// sharedSuite reuses one Loader across all tests in this package: the
// source importer's stdlib type-checking dominates load time, and the
// cache makes every fixture after the first load in milliseconds.
var (
	suiteOnce sync.Once
	suiteVal  *Suite
	suiteErr  error
)

func sharedSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		root, err := filepath.Abs("../..")
		if err != nil {
			suiteErr = err
			return
		}
		suiteVal, suiteErr = NewSuite(root)
	})
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suiteVal
}

var fixtureAnalyzers = []string{"detwall", "detmaprange", "detgoroutine", "kindswitch", "scrollrecord"}

// TestDirtyFixtures runs each analyzer's intentionally-dirty fixture and
// compares the diagnostics against the committed golden file. A silent
// pass on dirty code means the analyzer has stopped working — the
// meta-bug this test exists to catch.
func TestDirtyFixtures(t *testing.T) {
	root := moduleRoot(t)
	suite := sharedSuite(t)
	for _, name := range fixtureAnalyzers {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("internal", "analysis", "testdata", "src", name, "dirty")
			diags, err := suite.Run(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(diags) == 0 {
				t.Fatalf("%s produced no diagnostics on its dirty fixture", name)
			}
			var buf bytes.Buffer
			WriteText(&buf, root, diags)
			got := strings.TrimSpace(buf.String())
			goldenPath := filepath.Join(root, dir, "expect.txt")
			golden, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatal(err)
			}
			want := strings.TrimSpace(string(golden))
			if got != want {
				t.Errorf("diagnostics differ from %s\n--- got ---\n%s\n--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestCleanFixtures runs each analyzer's clean twin — same shape as the
// dirty fixture with the determinism-safe idiom — and requires silence.
// A diagnostic here is a false positive that would teach people to
// scatter annotations.
func TestCleanFixtures(t *testing.T) {
	suite := sharedSuite(t)
	for _, name := range fixtureAnalyzers {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("internal", "analysis", "testdata", "src", name, "clean")
			diags, err := suite.Run(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(diags) != 0 {
				root := moduleRoot(t)
				var buf bytes.Buffer
				WriteText(&buf, root, diags)
				t.Errorf("clean fixture produced diagnostics:\n%s", buf.String())
			}
		})
	}
}

// TestRepoClean is the merge gate satellite: the suite must exit clean on
// the repository itself. Every intentional wall-clock read and
// scroll-free Context method is annotated; anything new that trips an
// analyzer is either a real determinism bug or a site that needs an
// audited annotation.
func TestRepoClean(t *testing.T) {
	root := moduleRoot(t)
	suite := sharedSuite(t)
	diags, err := suite.Run("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		var buf bytes.Buffer
		WriteText(&buf, root, diags)
		t.Errorf("fixd-lint is not clean on the repo:\n%s", buf.String())
	}
}

// TestWriteJSON checks the -json shape: module-relative file paths and
// the file/line/col/analyzer/message fields tooling keys on.
func TestWriteJSON(t *testing.T) {
	root := moduleRoot(t)
	suite := sharedSuite(t)
	diags, err := suite.Run(filepath.Join("internal", "analysis", "testdata", "src", "detwall", "dirty"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, root, diags); err != nil {
		t.Fatal(err)
	}
	var out []JSONDiagnostic
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("WriteJSON emitted invalid JSON: %v\n%s", err, buf.String())
	}
	if len(out) != len(diags) {
		t.Fatalf("JSON has %d entries, want %d", len(out), len(diags))
	}
	first := out[0]
	if first.File != "internal/analysis/testdata/src/detwall/dirty/dirty.go" {
		t.Errorf("File = %q, want module-relative fixture path", first.File)
	}
	if first.Line == 0 || first.Col == 0 {
		t.Errorf("Line/Col = %d/%d, want positioned", first.Line, first.Col)
	}
	if first.Analyzer != "detwall" {
		t.Errorf("Analyzer = %q, want detwall", first.Analyzer)
	}
	if first.Message == "" {
		t.Error("Message is empty")
	}
}

// TestAnnotationValidation pins the escape-hatch contract: a reasonless
// annotation is itself a diagnostic and does not suppress, so escapes
// cannot rot into unaudited blanket waivers.
func TestAnnotationValidation(t *testing.T) {
	suite := sharedSuite(t)
	diags, err := suite.Run(filepath.Join("internal", "analysis", "testdata", "src", "detwall", "dirty"))
	if err != nil {
		t.Fatal(err)
	}
	var annCount, detwallOnAnnLine int
	for _, d := range diags {
		if d.Analyzer == "annotation" {
			annCount++
			for _, e := range diags {
				if e.Analyzer == "detwall" && e.Pos.Line == d.Pos.Line {
					detwallOnAnnLine++
				}
			}
		}
	}
	if annCount != 1 {
		t.Errorf("want exactly 1 reasonless-annotation diagnostic, got %d", annCount)
	}
	if detwallOnAnnLine != 1 {
		t.Errorf("reasonless //fixd:wallclock must not suppress: want the detwall diagnostic on its line, got %d", detwallOnAnnLine)
	}
}
