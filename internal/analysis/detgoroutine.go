package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Detgoroutine forbids concurrency constructs inside the single-threaded
// simulation core (internal/dsim): go statements, channel makes/sends/
// receives, select, and sync/sync/atomic primitives. Machine execution is
// deterministic precisely because exactly one event handler runs at a
// time in virtual-time order; a goroutine or channel in that path would
// hand scheduling back to the Go runtime and break byte-identical replay.
// The chaos worker pools and the live backend are outside this scope on
// purpose — their concurrency is proven safe by merge-order determinism
// tests, not forbidden.
var Detgoroutine = &Analyzer{
	Name: "detgoroutine",
	Doc:  "forbid goroutines, channels, select, and sync primitives in the simulation core",
	Run:  runDetgoroutine,
}

func runDetgoroutine(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement in the simulation core — machine execution must stay single-threaded for deterministic replay")
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send in the simulation core — events flow through the deterministic queue, not channels")
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select in the simulation core — runtime-picked cases are unordered and break replay")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive in the simulation core — events flow through the deterministic queue, not channels")
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "make" && len(n.Args) > 0 {
					if obj := pass.Info.Uses[id]; obj != nil {
						if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
							if t := pass.Info.TypeOf(n.Args[0]); t != nil {
								if _, isChan := t.Underlying().(*types.Chan); isChan {
									pass.Reportf(n.Pos(), "make(chan) in the simulation core — events flow through the deterministic queue, not channels")
								}
							}
						}
					}
				}
			case *ast.SelectorExpr:
				if path, name, ok := selectorPkgFunc(pass.Info, n); ok {
					if path == "sync" || path == "sync/atomic" {
						pass.Reportf(n.Pos(), "%s.%s in the simulation core — cross-goroutine synchronization implies concurrency the simulator must not have", lastPathElem(path), name)
					}
				}
			}
			return true
		})
	}
	return nil
}
