// Package analysis implements fixd-lint, the determinism-safety static
// analysis suite.
//
// # Why a linter
//
// Every FixD capability — chaos matrices, guided search, the fleet,
// repair — is gated on byte-identical reports across seeds, worker counts
// and backends. That contract was previously enforced only at runtime, by
// property tests that can miss a nondeterminism bug until a seed happens
// to hit it. The suite classifies the repo's recurring nondeterminism bug
// patterns (the way TFix+ classifies timeout-bug signatures) and rejects
// them at compile time instead of replay time.
//
// # The analyzers
//
//   - detwall: forbids wall-clock reads (time.Now/Since/Sleep/After/...),
//     global math/rand draws, os.Getenv-style environment reads, and
//     runtime.NumCPU-style topology reads inside the deterministic core
//     (internal/{dsim,chaos,scroll,fault,apps,vclock,checkpoint}) plus the
//     annotation-audited bridge packages (internal/substrate,
//     internal/experiments). Seeded rand.New(rand.NewSource(seed)) is
//     allowed; ambient inputs are not.
//
//   - detmaprange: flags `for range` over a map whose body appends to a
//     slice, writes scroll records, feeds a Hasher/ShapeAccumulator/
//     Fingerprinter or any hash, or marshals JSON — unless it is the
//     collect-keys-then-sort idiom. Map order is randomized; these loops
//     are the classic digest-divergence bug (chaos.Runner iterates the
//     sorted Procs() slice precisely because of it).
//
//   - detgoroutine: forbids go statements, channel makes/sends/receives,
//     select, and sync/sync-atomic primitives inside internal/dsim, whose
//     determinism depends on single-threaded machine execution in
//     virtual-time order.
//
//   - kindswitch: exhaustiveness checking for switches over fault.Kind
//     and fleet.FrameType. A switch missing a declared constant and
//     lacking a default is a diagnostic, so the next PR 9-style fault kind
//     cannot silently skip a Compile/Generate/Normalize/mutate/shrink
//     table.
//
//   - scrollrecord: every dsim.Context implementation's Send, Now,
//     Random, DurablePut, DurableGet and DurableKeys must append a scroll
//     record on every return path — a path that skips the append records
//     a run that replays differently than it executed.
//
// # Annotations
//
// Intentional violations carry a reason, on the offending line or the
// line above:
//
//	deadline := time.Now().Add(w) //fixd:wallclock live quiescence is wall-time bounded
//
//	//fixd:nondeterm sandbox Send captures messages locally; there is no scroll
//	func (c *sandboxCtx) Send(to string, payload []byte) { ... }
//
// //fixd:wallclock suppresses detwall; //fixd:nondeterm suppresses the
// other four. An annotation without a reason is itself a diagnostic.
//
// # Running
//
//	go run ./cmd/fixd-lint ./...          # whole module, exit 1 on findings
//	go run ./cmd/fixd-lint -json ./...    # machine-readable diagnostics
//	go run ./cmd/fixd-lint ./internal/analysis/testdata/src/detwall/dirty
//	                                      # fixture packages run their analyzer
//
// The suite is zero-dependency: packages are loaded with go/parser and
// type-checked with go/types, resolving module-internal imports against
// the module tree and the standard library through go/importer's source
// importer. CI runs `fixd-lint ./...` next to go vet, plus a negative
// smoke asserting the linter still fails on a dirty fixture.
package analysis
