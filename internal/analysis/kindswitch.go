package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// Kindswitch enforces exhaustiveness for switches over FixD's closed
// enums — fault.Kind and the fleet wire protocol's FrameType. Every PR
// that adds a fault kind (Rollback in PR 6, Corrupt/SlowNode in PR 9) has
// to thread it through the Compile/Generate/Normalize/mutate/shrink
// tables; a switch that silently ignores the new constant is exactly the
// omission a reviewer misses and replay-time tests only catch when a seed
// happens to reach it. A switch over an enum must either mention every
// declared constant or carry a default clause that makes the remainder
// explicit.
var Kindswitch = &Analyzer{
	Name: "kindswitch",
	Doc:  "exhaustiveness checking for switches over fault.Kind and fleet.FrameType",
	Run:  runKindswitch,
}

// kindswitchEnums lists the closed enum types the analyzer guards,
// keyed by defining package path and type name.
var kindswitchEnums = map[[2]string]bool{
	{"repro/internal/fault", "Kind"}:      true,
	{"repro/internal/fleet", "FrameType"}: true,
}

func runKindswitch(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tagType := pass.Info.TypeOf(sw.Tag)
			named := namedOf(tagType)
			if named == nil {
				return true
			}
			obj := named.Obj()
			if obj.Pkg() == nil || !kindswitchEnums[[2]string{obj.Pkg().Path(), obj.Name()}] {
				return true
			}
			consts := enumConstants(obj.Pkg(), named)
			if len(consts) == 0 {
				return true
			}
			covered := make(map[string]bool)
			hasDefault := false
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					hasDefault = true
					continue
				}
				for _, e := range cc.List {
					if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
						covered[constKey(tv.Value)] = true
					}
				}
			}
			if hasDefault {
				return true
			}
			var missing []string
			for _, c := range consts {
				if !covered[constKey(c.Val())] {
					missing = append(missing, c.Name())
				}
			}
			if len(missing) > 0 {
				pass.Reportf(sw.Pos(), "switch over %s.%s is missing %s and has no default — a future %s added here would be silently skipped",
					obj.Pkg().Name(), obj.Name(), strings.Join(missing, ", "), obj.Name())
			}
			return true
		})
	}
	return nil
}

// namedOf unwraps a type to its named form, following aliases.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if a, ok := t.(*types.Alias); ok {
		t = types.Unalias(a)
	}
	named, _ := t.(*types.Named)
	return named
}

// enumConstants returns the package-level constants declared with exactly
// the enum's named type, in declaration (value) order.
func enumConstants(pkg *types.Package, enum *types.Named) []*types.Const {
	var out []*types.Const
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), enum) {
			continue
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		vi, iok := constant.Int64Val(out[i].Val())
		vj, jok := constant.Int64Val(out[j].Val())
		if iok && jok && vi != vj {
			return vi < vj
		}
		return out[i].Name() < out[j].Name()
	})
	return out
}

// constKey renders a constant value as a comparison key.
func constKey(v constant.Value) string { return fmt.Sprintf("%s", v.ExactString()) }
