package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Detmaprange flags `for range` over a map whose body feeds an
// order-sensitive sink — appending to a slice, writing scroll records,
// feeding a Hasher/ShapeAccumulator/Fingerprinter (or any hash), or
// marshaling JSON. Go randomizes map iteration order on purpose, so such
// a loop produces a different byte stream on every run: the classic
// digest-divergence bug this repo keeps designing around (chaos.Runner
// iterates the sorted r.Procs() slice precisely because of it).
//
// The one safe idiom is recognized: collecting only the keys into a slice
// that the same function later sorts —
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)
//
// Anything else needs sorted keys first, or //fixd:nondeterm <reason>
// when the sink is genuinely order-insensitive.
var Detmaprange = &Analyzer{
	Name: "detmaprange",
	Doc:  "flag map iteration feeding slices, scrolls, hashes, or JSON without sorting keys first",
	Run:  runDetmaprange,
}

// detmaprangeSinkPkgs are package-path prefixes whose method calls count
// as order-sensitive sinks (scroll writers/fingerprints and hashes).
var detmaprangeSinkPkgs = []string{
	"repro/internal/scroll",
	"hash",
	"crypto/",
}

func runDetmaprange(pass *Pass) error {
	for _, f := range pass.Files {
		// Walk functions so the safe-idiom check can see the whole body
		// (the sort call lives outside the range statement).
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkMapRanges(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkMapRanges finds map-range statements directly inside fn's body
// (including nested blocks, but not nested function literals — those are
// walked as their own functions) and reports order-sensitive sinks.
func checkMapRanges(pass *Pass, fnBody *ast.BlockStmt) {
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != nil {
			return false // analyzed separately with its own body scope
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if sink := firstSink(pass, rng); sink != "" {
			if isSafeKeyCollect(pass, rng, fnBody) {
				return true
			}
			pass.Reportf(rng.Pos(), "map iteration %s — map order is randomized, so the output bytes differ across runs; iterate sorted keys instead (or annotate an order-insensitive sink: //fixd:nondeterm <reason>)", sink)
		}
		return true
	})
}

// firstSink scans a map-range body for the first order-sensitive sink and
// describes it, or returns "" when the body is order-insensitive.
func firstSink(pass *Pass, rng *ast.RangeStmt) string {
	sink := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Builtin append — but only when it grows an accumulator that
		// outlives the loop. append([]byte(nil), v...) copies and
		// per-key appends (cells[k] = append(..., v)) are order-insensitive.
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
			if obj := pass.Info.Uses[id]; obj != nil {
				if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
					if len(call.Args) > 0 && isAccumulator(pass, call.Args[0], rng) {
						sink = "appends to a slice"
						return false
					}
				}
			}
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			// Package-qualified: json.Marshal and friends.
			if path, name, ok := selectorPkgFunc(pass.Info, sel); ok {
				if (path == "encoding/json" && strings.HasPrefix(name, "Marshal")) ||
					(path == "fmt" && strings.HasPrefix(name, "Fprint")) {
					sink = "marshals/prints in iteration order"
					return false
				}
				return true
			}
			// Method call: scroll writers, fingerprint accumulators, hashes,
			// JSON encoders.
			if recv := pass.Info.TypeOf(sel.X); recv != nil {
				if pkgPath, typeName := receiverPkgType(recv); pkgPath != "" {
					for _, pre := range detmaprangeSinkPkgs {
						if pkgPath == strings.TrimSuffix(pre, "/") || strings.HasPrefix(pkgPath, pre) {
							sink = "writes " + typeName + "." + sel.Sel.Name + " in iteration order"
							return false
						}
					}
					if pkgPath == "encoding/json" && sel.Sel.Name == "Encode" {
						sink = "encodes JSON in iteration order"
						return false
					}
				}
			}
		}
		return true
	})
	return sink
}

// isAccumulator decides whether an append destination accumulates across
// loop iterations — the only case where map order leaks into output. A
// plain identifier declared outside the range body accumulates; a
// loop-local variable, a fresh-slice conversion like append([]byte(nil),
// v...), or a map cell indexed by the range key (one append per key) do
// not. Field/selector destinations are treated as accumulators.
func isAccumulator(pass *Pass, dst ast.Expr, rng *ast.RangeStmt) bool {
	switch dst := dst.(type) {
	case *ast.Ident:
		obj := objOf(pass.Info, dst)
		if obj == nil {
			return true
		}
		declaredInside := obj.Pos() >= rng.Body.Pos() && obj.Pos() <= rng.Body.End()
		return !declaredInside
	case *ast.IndexExpr:
		if keyID, ok := rng.Key.(*ast.Ident); ok && keyID.Name != "_" {
			if idx, ok := dst.Index.(*ast.Ident); ok && objOf(pass.Info, idx) == objOf(pass.Info, keyID) {
				return false
			}
		}
		return true
	case *ast.SelectorExpr:
		return true
	default:
		// Composite literals, conversions, call results: a fresh slice.
		return false
	}
}

// receiverPkgType resolves a receiver type to its defining package path
// and type name, unwrapping pointers.
func receiverPkgType(t types.Type) (pkgPath, typeName string) {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return "", ""
	}
	return named.Obj().Pkg().Path(), named.Obj().Name()
}

// isSafeKeyCollect recognizes the collect-keys-then-sort idiom: every
// append in the body appends only the range's key variable, and every
// slice so grown is passed to a sort call later in the same function.
func isSafeKeyCollect(pass *Pass, rng *ast.RangeStmt, fnBody *ast.BlockStmt) bool {
	keyID, ok := rng.Key.(*ast.Ident)
	if !ok || keyID.Name == "_" {
		return false
	}
	keyObj := pass.Info.Defs[keyID]
	if keyObj == nil {
		keyObj = pass.Info.Uses[keyID]
	}
	if keyObj == nil {
		return false
	}
	safe := true
	var targets []types.Object
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if !safe {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" {
			return true
		}
		if obj := pass.Info.Uses[id]; obj == nil {
			return true
		} else if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
			return true
		}
		// append(dst, k) with dst a plain identifier and k the key var.
		if len(call.Args) != 2 || call.Ellipsis.IsValid() {
			safe = false
			return false
		}
		dst, ok := call.Args[0].(*ast.Ident)
		if !ok {
			safe = false
			return false
		}
		arg, ok := call.Args[1].(*ast.Ident)
		if !ok || objOf(pass.Info, arg) != keyObj {
			safe = false
			return false
		}
		targets = append(targets, objOf(pass.Info, dst))
		return true
	})
	if !safe || len(targets) == 0 {
		return false
	}
	for _, target := range targets {
		if target == nil || !sortedLater(pass, fnBody, rng, target) {
			return false
		}
	}
	return true
}

// sortedLater reports whether a sort call mentioning target appears in
// the function after the range statement.
func sortedLater(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, target types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		path, name, ok := selectorPkgFunc(pass.Info, sel)
		if !ok {
			return true
		}
		isSort := path == "sort" || (path == "slices" && strings.HasPrefix(name, "Sort"))
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			mentions := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && objOf(pass.Info, id) == target {
					mentions = true
					return false
				}
				return true
			})
			if mentions {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// objOf resolves an identifier to its object (use or definition).
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
