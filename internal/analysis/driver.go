package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// Analyzers is the full determinism suite in stable order.
var Analyzers = []*Analyzer{Detwall, Detmaprange, Detgoroutine, Kindswitch, Scrollrecord}

// CorePackages are the deterministic-core packages: everything that runs
// inside (or feeds bytes into) the seeded simulation and must be free of
// ambient inputs and iteration-order leaks.
var CorePackages = []string{
	"repro/internal/dsim",
	"repro/internal/chaos",
	"repro/internal/scroll",
	"repro/internal/fault",
	"repro/internal/apps",
	"repro/internal/vclock",
	"repro/internal/checkpoint",
}

// WallclockScope extends the core with the two packages that bridge to
// real time — the live substrate and the bench/experiment harness — where
// wall-clock reads are legitimate but must be annotated
// (//fixd:wallclock <reason>) so each one is an audited decision.
var WallclockScope = append(append([]string{}, CorePackages...),
	"repro/internal/substrate",
	"repro/internal/experiments",
)

// appliesTo decides whether an analyzer runs on a package. Fixture
// packages under testdata/ are special-cased: a package inside
// testdata/src/<analyzer>/ runs exactly that analyzer, which is what lets
// `fixd-lint ./internal/analysis/testdata/src/detwall/dirty` serve as the
// CI negative smoke.
func appliesTo(a *Analyzer, pkgPath string) bool {
	if i := strings.Index(pkgPath, "/testdata/"); i >= 0 {
		return strings.Contains(pkgPath[i:], "/"+a.Name+"/")
	}
	switch a.Name {
	case "detwall":
		return containsPath(WallclockScope, pkgPath)
	case "detmaprange":
		return containsPath(CorePackages, pkgPath)
	case "detgoroutine":
		return pkgPath == "repro/internal/dsim"
	default: // kindswitch, scrollrecord: the contract is global
		return true
	}
}

func containsPath(list []string, p string) bool {
	for _, s := range list {
		if s == p {
			return true
		}
	}
	return false
}

// Suite runs the analyzer catalog over a module with annotation
// suppression applied.
type Suite struct {
	Loader    *Loader
	Analyzers []*Analyzer
}

// NewSuite returns the default suite for the module rooted at dir.
func NewSuite(moduleRoot string) (*Suite, error) {
	l, err := NewLoader(moduleRoot)
	if err != nil {
		return nil, err
	}
	return &Suite{Loader: l, Analyzers: Analyzers}, nil
}

// Run loads the patterns and runs every in-scope analyzer on every
// package. Diagnostics suppressed by a valid annotation are dropped;
// malformed annotations are themselves diagnostics. The result is sorted
// by position.
func (s *Suite) Run(patterns ...string) ([]Diagnostic, error) {
	pkgs, err := s.Loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		anns, annDiags := parseAnnotations(pkg)
		out = append(out, annDiags...)
		for _, a := range s.Analyzers {
			if !appliesTo(a, pkg.Path) {
				continue
			}
			diags, err := RunAnalyzer(a, pkg)
			if err != nil {
				return nil, err
			}
			for _, d := range diags {
				if !anns.suppressed(d) {
					out = append(out, d)
				}
			}
		}
	}
	SortDiagnostics(out)
	return out, nil
}

// JSONDiagnostic is the machine-readable diagnostic shape emitted by
// fixd-lint -json — the same committed-JSON-evidence idiom the bench and
// fleet tooling use.
type JSONDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON renders diagnostics as an indented JSON array with paths
// relative to the module root (stable across checkouts).
func WriteJSON(w io.Writer, moduleRoot string, diags []Diagnostic) error {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, JSONDiagnostic{
			File:     relPath(moduleRoot, d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteText renders diagnostics one per line in file:line:col form with
// paths relative to the module root.
func WriteText(w io.Writer, moduleRoot string, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", relPath(moduleRoot, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
}

func relPath(root, p string) string {
	if rel, err := filepath.Rel(root, p); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return p
}
