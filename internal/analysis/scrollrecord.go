package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Scrollrecord is the domain check behind record/replay completeness:
// every Context implementation's nondeterministic-outcome operations —
// sends, durable-store access, clock and randomness reads — must emit a
// scroll record on every return path. A path that skips the append
// produces a recording that replays differently from the run that made
// it, which surfaces later as an inexplicable digest divergence.
//
// The analyzer finds methods named Send, Now, Random, DurablePut,
// DurableGet, or DurableKeys on types implementing dsim.Context and
// verifies a scroll append (a call to scroll.Scroll.Append, or a helper
// whose name starts with "record") dominates every return. Timer arming
// (SetTimer) is deliberately not in the list: virtual-time timers are
// deterministic inputs, and neither backend records the arm itself.
// Implementations that model effects locally instead of recording them
// (the investigator sandbox) annotate with //fixd:nondeterm <reason>.
var Scrollrecord = &Analyzer{
	Name: "scrollrecord",
	Doc:  "Context send/durable/clock/random methods must write a scroll record on every return path",
	Run:  runScrollrecord,
}

// scrollrecordMethods are the Context operations whose outcomes feed
// replay and therefore must be recorded.
var scrollrecordMethods = map[string]bool{
	"Send": true, "Now": true, "Random": true,
	"DurablePut": true, "DurableGet": true, "DurableKeys": true,
}

const (
	dsimPkgPath   = "repro/internal/dsim"
	scrollPkgPath = "repro/internal/scroll"
)

func runScrollrecord(pass *Pass) error {
	ctxIface := contextInterface(pass.Pkg)
	if ctxIface == nil {
		return nil // package neither defines nor imports dsim.Context
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || !scrollrecordMethods[fn.Name.Name] {
				continue
			}
			if docAnnotated(fn.Doc, AnnNondeterm) {
				continue
			}
			recvType := pass.Info.TypeOf(fn.Recv.List[0].Type)
			if recvType == nil {
				continue
			}
			if p, ok := recvType.(*types.Pointer); ok {
				recvType = p.Elem()
			}
			named := namedOf(recvType)
			if named == nil {
				continue
			}
			if !types.Implements(types.NewPointer(named), ctxIface) {
				continue
			}
			w := &recordWalker{pass: pass, fn: fn}
			seen := w.check(fn.Body.List, false)
			if !seen && fn.Type.Results == nil && !w.reportedEnd {
				// A void method falling off the end without recording.
				pass.Reportf(fn.Pos(), "%s.%s performs a recorded operation but emits no scroll record before returning — replay cannot observe this outcome", named.Obj().Name(), fn.Name.Name)
			}
		}
	}
	return nil
}

// contextInterface finds dsim.Context from the analyzed package or its
// imports.
func contextInterface(pkg *types.Package) *types.Interface {
	lookup := func(p *types.Package) *types.Interface {
		if obj, ok := p.Scope().Lookup("Context").(*types.TypeName); ok {
			if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
				return iface
			}
		}
		return nil
	}
	if pkg.Path() == dsimPkgPath {
		return lookup(pkg)
	}
	for _, imp := range allImports(pkg, map[*types.Package]bool{}) {
		if imp.Path() == dsimPkgPath {
			return lookup(imp)
		}
	}
	return nil
}

// allImports flattens a package's transitive imports.
func allImports(pkg *types.Package, seen map[*types.Package]bool) []*types.Package {
	var out []*types.Package
	for _, imp := range pkg.Imports() {
		if seen[imp] {
			continue
		}
		seen[imp] = true
		out = append(out, imp)
		out = append(out, allImports(imp, seen)...)
	}
	return out
}

// recordWalker performs a conservative all-paths analysis: walking the
// statement list in order, tracking whether a scroll append has
// definitely executed, and reporting any return reached without one.
type recordWalker struct {
	pass        *Pass
	fn          *ast.FuncDecl
	reportedEnd bool
}

// check walks stmts with the given entry state and returns whether a
// record is guaranteed once the list falls through.
func (w *recordWalker) check(stmts []ast.Stmt, seen bool) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.ReturnStmt:
			if stmtRecords(w.pass, s) {
				seen = true
			}
			if !seen {
				w.report(s)
			}
			return seen
		case *ast.BlockStmt:
			seen = w.check(s.List, seen)
		case *ast.IfStmt:
			if s.Init != nil && stmtRecords(w.pass, s.Init) {
				seen = true
			}
			if exprRecords(w.pass, s.Cond) {
				seen = true
			}
			thenSeen := w.check(s.Body.List, seen)
			elseSeen := seen
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseSeen = w.check(e.List, seen)
			case *ast.IfStmt:
				elseSeen = w.check([]ast.Stmt{e}, seen)
			}
			seen = thenSeen && elseSeen
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			seen = w.checkSwitch(s, seen)
		case *ast.ForStmt:
			w.check(s.Body.List, seen) // body may run zero times
		case *ast.RangeStmt:
			w.check(s.Body.List, seen)
		default:
			if stmtRecords(w.pass, s) {
				seen = true
			}
		}
	}
	return seen
}

// checkSwitch handles switch-like statements: the whole construct
// guarantees a record only when every clause does and a default exists.
func (w *recordWalker) checkSwitch(s ast.Stmt, seen bool) bool {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil && stmtRecords(w.pass, s.Init) {
			seen = true
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	all := true
	hasDefault := false
	for _, clause := range body.List {
		var list []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			list = c.Body
			if c.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			list = c.Body
			if c.Comm == nil {
				hasDefault = true
			}
		}
		if !w.check(list, seen) {
			all = false
		}
	}
	if all && hasDefault {
		return true
	}
	return seen
}

func (w *recordWalker) report(ret *ast.ReturnStmt) {
	w.reportedEnd = true
	w.pass.Reportf(ret.Pos(), "return without a scroll record in %s — every return path of a recorded Context operation must append to the scroll first", w.fn.Name.Name)
}

// stmtRecords reports whether a statement (excluding nested function
// literals) contains a scroll-record call.
func stmtRecords(pass *Pass, s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a closure is not necessarily called
		}
		if call, ok := n.(*ast.CallExpr); ok && isRecordCall(pass, call) {
			found = true
			return false
		}
		return true
	})
	return found
}

func exprRecords(pass *Pass, e ast.Expr) bool {
	if e == nil {
		return false
	}
	return stmtRecords(pass, &ast.ExprStmt{X: e})
}

// isRecordCall recognizes scroll appends: a method call named Append on a
// value from the scroll package, or a call to a helper whose name starts
// with "record"/"Record".
func isRecordCall(pass *Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if strings.HasPrefix(name, "record") || strings.HasPrefix(name, "Record") {
			return true
		}
		if name == "Append" {
			if recv := pass.Info.TypeOf(fun.X); recv != nil {
				if pkgPath, _ := receiverPkgType(recv); pkgPath == scrollPkgPath {
					return true
				}
			}
		}
	case *ast.Ident:
		if strings.HasPrefix(fun.Name, "record") || strings.HasPrefix(fun.Name, "Record") {
			return true
		}
	}
	return false
}
