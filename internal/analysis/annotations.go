package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Annotation escape hatches. A site the linter flags can be declared
// intentional with a same-line or immediately-preceding comment:
//
//	now := time.Now() //fixd:wallclock live backend maps wall time to ticks
//
//	//fixd:nondeterm sandbox models sends locally; no scroll exists here
//	func (c *sandboxCtx) Send(to string, payload []byte) { ... }
//
// AnnWallclock suppresses detwall; AnnNondeterm suppresses the other
// analyzers (detmaprange, detgoroutine, kindswitch, scrollrecord). A
// reason is mandatory — an annotation without one is itself a diagnostic,
// so escapes stay auditable.
const (
	AnnWallclock = "wallclock"
	AnnNondeterm = "nondeterm"
)

const annPrefix = "//fixd:"

// Annotation is one parsed //fixd: comment.
type Annotation struct {
	Kind   string // AnnWallclock or AnnNondeterm
	Reason string
	Pos    token.Position
}

// annotationIndex maps file -> line -> annotation for suppression lookup.
type annotationIndex map[string]map[int]Annotation

// parseAnnotations scans a package's comments for //fixd: annotations.
// Malformed annotations (unknown kind, missing reason) are reported as
// diagnostics under the "annotation" pseudo-analyzer so they cannot
// silently fail to suppress.
func parseAnnotations(pkg *Package) (annotationIndex, []Diagnostic) {
	idx := make(annotationIndex)
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, annPrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, annPrefix)
				kind, reason, _ := strings.Cut(rest, " ")
				pos := pkg.Fset.Position(c.Pos())
				if kind != AnnWallclock && kind != AnnNondeterm {
					diags = append(diags, Diagnostic{
						Pos:      pos,
						Analyzer: "annotation",
						Message:  "unknown annotation //fixd:" + kind + " (want wallclock or nondeterm)",
					})
					continue
				}
				reason = strings.TrimSpace(reason)
				if reason == "" {
					diags = append(diags, Diagnostic{
						Pos:      pos,
						Analyzer: "annotation",
						Message:  "//fixd:" + kind + " needs a reason: //fixd:" + kind + " <why this site is safe>",
					})
					continue
				}
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]Annotation)
					idx[pos.Filename] = byLine
				}
				byLine[pos.Line] = Annotation{Kind: kind, Reason: reason, Pos: pos}
			}
		}
	}
	return idx, diags
}

// docAnnotated reports whether a declaration's doc comment carries the
// given annotation with a reason — the method-level escape used by whole
// Context implementations that intentionally do not write scrolls (the
// replayer consumes records instead of producing them; the investigator
// sandbox models effects locally).
func docAnnotated(doc *ast.CommentGroup, kind string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, annPrefix+kind)
		if ok && strings.TrimSpace(rest) != "" {
			return true
		}
	}
	return false
}

// annotationKindFor maps an analyzer name to the annotation kind that
// suppresses it.
func annotationKindFor(analyzer string) string {
	if analyzer == "detwall" {
		return AnnWallclock
	}
	return AnnNondeterm
}

// suppressed reports whether a diagnostic is covered by an annotation on
// its own line or the line directly above it.
func (idx annotationIndex) suppressed(d Diagnostic) bool {
	byLine := idx[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	want := annotationKindFor(d.Analyzer)
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if ann, ok := byLine[line]; ok && ann.Kind == want {
			return true
		}
	}
	return false
}
