// fixd-bench regenerates every figure of the paper as a quantitative
// experiment and prints the result tables (see README.md for the
// experiment index). Whenever the chaos matrix (E9) runs, the sharding
// benchmark also runs and writes machine-readable results — cells/sec,
// sequential vs. sharded — to BENCH_chaos.json for CI trending. With
// -search, the guided-search benchmark additionally runs and records
// corpus growth, distinct-fingerprint counts (guided vs the equal-budget
// random baseline) and the shrunk failing-schedule artifacts into
// BENCH_search.json; it sweeps every seeded-bug application including the
// scenario-zoo workloads, runs twice at different worker counts, and
// fails on any report divergence.
//
// Usage:
//
//	fixd-bench                  # full parameter sweeps
//	fixd-bench -quick           # reduced sweeps (seconds, for CI)
//	fixd-bench -only E3         # a single experiment
//	fixd-bench -shard.workers 8 # worker pool for the chaos matrix
//	fixd-bench -chaos.json out.json
//	fixd-bench -search          # guided-search bench -> BENCH_search.json
//	fixd-bench -runtime         # hot-path bench -> BENCH_runtime.json
//	fixd-bench -fleet           # distributed-fleet bench -> BENCH_fleet.json
//	fixd-bench -repair          # repair bench -> BENCH_repair.json
//
// -repair hunts a minimal failing artifact for every knobbed seeded-bug
// application, searches its typed knob space for a verified fix (E11's
// operating point), and records success rate, runs-to-fix and report
// byte-identity across worker counts; fewer than three repaired
// applications or any divergence fails the run.
//
// -runtime measures the chaos run loop end to end — runs/sec, ns/run and
// allocs/run on the matrix and search workloads — on the pooled/streaming
// path versus the pre-pooling reference path in the same binary, verifies
// the two produce byte-identical reports (including a sharded sweep), and
// records the buggy-tokenring cost before and after early-exit invariant
// monitoring.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/experiments"
)

// runners maps experiment IDs to their table generators.
var runners = map[string]func(bool) *experiments.Table{
	"E1":  experiments.RunE1,
	"E2":  experiments.RunE2,
	"E3":  experiments.RunE3,
	"E4":  experiments.RunE4,
	"E5":  experiments.RunE5,
	"E6":  experiments.RunE6,
	"E7":  experiments.RunE7,
	"E8":  experiments.RunE8,
	"E9":  experiments.RunE9,
	"E10": experiments.RunE10,
	"E11": experiments.RunE11,
	"E12": experiments.RunE12,
	"ABL": experiments.RunAblations,
}

func main() {
	quick := flag.Bool("quick", false, "reduced parameter sweeps")
	only := flag.String("only", "", "run a single experiment (E1..E12 or ABL)")
	workers := flag.Int("shard.workers", runtime.NumCPU(), "worker pool width for the chaos matrix sweep")
	chaosJSON := flag.String("chaos.json", "BENCH_chaos.json", "chaos sharding benchmark output path (\"\" disables)")
	search := flag.Bool("search", false, "run the guided-search benchmark and write its JSON artifact")
	searchJSON := flag.String("search.json", "BENCH_search.json", "guided-search benchmark output path")
	runtimeBench := flag.Bool("runtime", false, "run the hot-path runtime benchmark and write its JSON artifact")
	runtimeJSON := flag.String("runtime.json", "BENCH_runtime.json", "runtime benchmark output path")
	runtimeReps := flag.Int("runtime.reps", 0, "timing reps per path for -runtime (0 = default: 5, or 1 with -quick)")
	fleetBench := flag.Bool("fleet", false, "run the distributed-fleet benchmark and write its JSON artifact")
	fleetJSON := flag.String("fleet.json", "BENCH_fleet.json", "fleet benchmark output path")
	repairBench := flag.Bool("repair", false, "run the repair benchmark and write its JSON artifact")
	repairJSON := flag.String("repair.json", "BENCH_repair.json", "repair benchmark output path")
	flag.Parse()

	experiments.MatrixWorkers = *workers

	if *only != "" {
		id := strings.ToUpper(*only)
		run, ok := runners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "fixd-bench: unknown experiment %q (want E1..E12 or ABL)\n", *only)
			os.Exit(2)
		}
		fmt.Print(run(*quick).Format())
		if id == "E9" {
			emitChaosBench(*workers, *chaosJSON)
		}
		if *search {
			emitSearchBench(*workers, *searchJSON)
		}
		if *runtimeBench {
			emitRuntimeBench(*workers, *runtimeReps, *quick, *runtimeJSON)
		}
		if *fleetBench {
			emitFleetBench(*workers, *quick, *fleetJSON)
		}
		if *repairBench {
			emitRepairBench(*workers, *quick, *repairJSON)
		}
		return
	}
	for _, tbl := range experiments.Suite(*quick) {
		fmt.Print(tbl.Format())
		fmt.Println()
	}
	emitChaosBench(*workers, *chaosJSON)
	if *search {
		emitSearchBench(*workers, *searchJSON)
	}
	if *runtimeBench {
		emitRuntimeBench(*workers, *runtimeReps, *quick, *runtimeJSON)
	}
	if *fleetBench {
		emitFleetBench(*workers, *quick, *fleetJSON)
	}
	if *repairBench {
		emitRepairBench(*workers, *quick, *repairJSON)
	}
}

// emitRepairBench runs the repair benchmark — artifact hunt plus
// knob-space repair over every knobbed seeded-bug application — and
// writes the JSON artifact. Fewer than three repaired applications, or
// any report that is not byte-identical across worker counts, fails the
// run: the detect → fix loop closing deterministically is the claim.
func emitRepairBench(workers int, quick bool, path string) {
	if path == "" {
		return
	}
	b, err := experiments.RunRepairBench(workers, quick)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fixd-bench: repair bench:", err)
		os.Exit(1)
	}
	out, err := b.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fixd-bench: repair bench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fixd-bench: repair bench:", err)
		os.Exit(1)
	}
	verdict := "deterministic"
	if !b.AllDeterministic {
		verdict = "REPORTS DIVERGED ACROSS WORKER COUNTS"
	}
	fmt.Printf("repair bench: %d/%d apps repaired (%.0f%%, kvstore is the expected honest failure), %s -> %s\n",
		b.Repaired, len(b.Apps), 100*b.SuccessRate, verdict, path)
	if b.Repaired < 3 || !b.AllDeterministic {
		fmt.Fprintln(os.Stderr, "fixd-bench: repair bench: repair regressed (want >= 3 repaired, deterministic reports)")
		os.Exit(1)
	}
}

// emitFleetBench runs the distributed-fleet benchmark — coordinator plus
// 1/2/4 loopback-TCP workers against the in-process sharded search — and
// writes the JSON artifact. Report divergence between the fleet and the
// baseline fails the run: distribution must never change the search.
func emitFleetBench(workers int, quick bool, path string) {
	if path == "" {
		return
	}
	b, err := experiments.RunFleetBench(workers, quick)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fixd-bench: fleet bench:", err)
		os.Exit(1)
	}
	out, err := b.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fixd-bench: fleet bench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fixd-bench: fleet bench:", err)
		os.Exit(1)
	}
	verdict := "identical reports"
	if !b.AllIdentical {
		verdict = "REPORTS DIVERGED"
	}
	fmt.Printf("fleet bench: baseline %.1f runs/s (%d in-process workers)", b.BaselineRunsSec, b.BaselineWorkers)
	for _, p := range b.Points {
		fmt.Printf(", fleet@%d %.1f runs/s", p.Workers, p.RunsPerSec)
	}
	fmt.Printf(", %s -> %s\n", verdict, path)
	if !b.AllIdentical {
		fmt.Fprintln(os.Stderr, "fixd-bench: fleet bench: fleet/baseline report divergence")
		os.Exit(1)
	}
}

// emitRuntimeBench runs the hot-path benchmark (old vs new run-loop path,
// early-exit tokenring cost) and writes the JSON artifact.
func emitRuntimeBench(workers, reps int, quick bool, path string) {
	if path == "" {
		return
	}
	b := experiments.RunRuntimeBench(workers, reps, quick)
	out, err := b.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fixd-bench: runtime bench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fixd-bench: runtime bench:", err)
		os.Exit(1)
	}
	identical := "identical reports"
	if !b.MatrixIdentical || !b.SearchIdentical || !b.MatrixShardedIdentical {
		identical = "REPORTS DIVERGED"
	}
	fmt.Printf("runtime bench: matrix %.0f -> %.0f runs/s (%.2fx), search %.0f -> %.0f runs/s (%.2fx), %s; buggy tokenring %.1fms -> %.2fms median/run -> %s\n",
		b.MatrixOld.RunsPerSec, b.MatrixNew.RunsPerSec, b.MatrixSpeedup,
		b.SearchOld.RunsPerSec, b.SearchNew.RunsPerSec, b.SearchSpeedup,
		identical, b.TokenringBeforeMedianMs, b.TokenringAfterMedianMs, path)
	if identical != "identical reports" {
		// The byte-identity cross-check is the whole point of carrying the
		// old path in the binary; a diverging artifact must fail the run
		// (and CI), not just annotate the JSON.
		fmt.Fprintln(os.Stderr, "fixd-bench: runtime bench: old/new report divergence")
		os.Exit(1)
	}
}

// emitSearchBench runs the guided-vs-random search benchmark (E10's
// operating point) and writes the JSON artifact, including the corpus
// growth curves and the shrunk failing-schedule artifacts. The benchmark
// runs twice at different worker counts and fails the run if the reports
// diverge (timing fields excluded): the corpus, coverage counts and
// shrunk artifacts must not depend on how the search was sharded.
func emitSearchBench(workers int, path string) {
	if path == "" {
		return
	}
	b := emitSearchBenchChecked(workers)
	out, err := b.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fixd-bench: search bench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fixd-bench: search bench:", err)
		os.Exit(1)
	}
	verdict := "guided > random"
	if !b.GuidedWins {
		verdict = "guided did NOT beat random"
	}
	fmt.Printf("guided-search bench: %d runs/app, guided %d shapes vs random %d (%s), %d apps -> %s\n",
		b.Budget, b.GuidedShapes, b.RandomShapes, verdict, len(b.Apps), path)
}

// emitSearchBenchChecked runs the search benchmark at the requested worker
// count plus one alternate count and exits non-zero on report divergence.
func emitSearchBenchChecked(workers int) *experiments.SearchBench {
	alt := 1
	if workers <= 1 {
		alt = 4
	}
	b := experiments.RunSearchBench(workers)
	b2 := experiments.RunSearchBench(alt)
	f1, err1 := b.Fingerprint()
	f2, err2 := b2.Fingerprint()
	if err1 != nil || err2 != nil {
		fmt.Fprintln(os.Stderr, "fixd-bench: search bench: fingerprint:", err1, err2)
		os.Exit(1)
	}
	if !bytes.Equal(f1, f2) {
		fmt.Fprintf(os.Stderr, "fixd-bench: search bench: reports diverged at %d vs %d workers\n", workers, alt)
		os.Exit(1)
	}
	return b
}

// emitChaosBench runs the sequential-vs-sharded matrix benchmark (reduced
// seed set — see RunChaosBench) and writes the JSON artifact.
func emitChaosBench(workers int, path string) {
	if path == "" {
		return
	}
	b := experiments.RunChaosBench(workers)
	out, err := b.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fixd-bench: chaos bench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fixd-bench: chaos bench:", err)
		os.Exit(1)
	}
	fmt.Printf("chaos sharding bench: %d cells, %.1f cells/s sequential, %.1f cells/s with %d workers (%.2fx) -> %s\n",
		b.Cells, b.SequentialCellsPerSec, b.ShardedCellsPerSec, b.Workers, b.Speedup, path)
}
