// fixd-bench regenerates every figure of the paper as a quantitative
// experiment and prints the result tables (see README.md for the
// experiment index).
//
// Usage:
//
//	fixd-bench            # full parameter sweeps
//	fixd-bench -quick     # reduced sweeps (seconds, for CI)
//	fixd-bench -only E3   # a single experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

// runners maps experiment IDs to their table generators.
var runners = map[string]func(bool) *experiments.Table{
	"E1":  experiments.RunE1,
	"E2":  experiments.RunE2,
	"E3":  experiments.RunE3,
	"E4":  experiments.RunE4,
	"E5":  experiments.RunE5,
	"E6":  experiments.RunE6,
	"E7":  experiments.RunE7,
	"E8":  experiments.RunE8,
	"E9":  experiments.RunE9,
	"ABL": experiments.RunAblations,
}

func main() {
	quick := flag.Bool("quick", false, "reduced parameter sweeps")
	only := flag.String("only", "", "run a single experiment (E1..E9 or ABL)")
	flag.Parse()

	if *only != "" {
		id := strings.ToUpper(*only)
		run, ok := runners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "fixd-bench: unknown experiment %q (want E1..E9 or ABL)\n", *only)
			os.Exit(2)
		}
		fmt.Print(run(*quick).Format())
		return
	}
	for _, tbl := range experiments.Suite(*quick) {
		fmt.Print(tbl.Format())
		fmt.Println()
	}
}
