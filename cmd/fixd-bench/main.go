// fixd-bench regenerates every figure of the paper as a quantitative
// experiment and prints the result tables (see DESIGN.md §4 and
// EXPERIMENTS.md for the mapping).
//
// Usage:
//
//	fixd-bench            # full parameter sweeps
//	fixd-bench -quick     # reduced sweeps (seconds, for CI)
//	fixd-bench -only E3   # a single experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced parameter sweeps")
	only := flag.String("only", "", "run a single experiment (E1..E8)")
	flag.Parse()

	runners := map[string]func(bool) *experiments.Table{
		"E1":  experiments.RunE1,
		"E2":  experiments.RunE2,
		"E3":  experiments.RunE3,
		"E4":  experiments.RunE4,
		"E5":  experiments.RunE5,
		"E6":  experiments.RunE6,
		"E7":  experiments.RunE7,
		"E8":  experiments.RunE8,
		"ABL": experiments.RunAblations,
	}

	if *only != "" {
		id := strings.ToUpper(*only)
		run, ok := runners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "fixd-bench: unknown experiment %q (want E1..E8 or ABL)\n", *only)
			os.Exit(2)
		}
		fmt.Print(run(*quick).Format())
		return
	}
	for _, tbl := range experiments.Suite(*quick) {
		fmt.Print(tbl.Format())
		fmt.Println()
	}
}
