package main

import "testing"

// TestRunnersComplete: every experiment the suite knows is reachable via
// -only, including the chaos matrix.
func TestRunnersComplete(t *testing.T) {
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "ABL"} {
		if runners[id] == nil {
			t.Errorf("experiment %s not registered", id)
		}
	}
}

// TestRunnerProducesTable: the -only path yields a printable table.
func TestRunnerProducesTable(t *testing.T) {
	tbl := runners["E1"](true)
	if tbl.ID != "E1" || len(tbl.Rows) == 0 || len(tbl.Format()) == 0 {
		t.Errorf("E1 quick table broken: %+v", tbl)
	}
}
