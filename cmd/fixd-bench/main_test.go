package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
)

// TestRunnersComplete: every experiment the suite knows is reachable via
// -only, including the chaos matrix.
func TestRunnersComplete(t *testing.T) {
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "ABL"} {
		if runners[id] == nil {
			t.Errorf("experiment %s not registered", id)
		}
	}
}

// TestRunnerProducesTable: the -only path yields a printable table.
func TestRunnerProducesTable(t *testing.T) {
	tbl := runners["E1"](true)
	if tbl.ID != "E1" || len(tbl.Rows) == 0 || len(tbl.Format()) == 0 {
		t.Errorf("E1 quick table broken: %+v", tbl)
	}
}

// TestEmitChaosBench: the machine-readable artifact lands on disk with
// sane numbers and a report identical across sequential and sharded runs.
func TestEmitChaosBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_chaos.json")
	emitChaosBench(4, path)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b experiments.ChaosBench
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatal(err)
	}
	if b.Cells == 0 || b.Workers != 4 {
		t.Errorf("bench = %+v", b)
	}
	if b.SequentialCellsPerSec <= 0 || b.ShardedCellsPerSec <= 0 {
		t.Errorf("cells/sec not populated: %+v", b)
	}
	if !b.Deterministic {
		t.Error("sharded report diverged from sequential")
	}
	if b.Failures != 0 {
		t.Errorf("%d matrix failures in the bench sweep", b.Failures)
	}
}

// TestEmitSearchBench: -search writes a machine-readable artifact where
// guided search wins the equal-budget comparison.
func TestEmitSearchBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_search.json")
	emitSearchBench(4, path)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b experiments.SearchBench
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatal(err)
	}
	if b.Budget == 0 || b.Workers != 4 || len(b.Apps) == 0 {
		t.Errorf("bench = %+v", b)
	}
	if !b.GuidedWins || b.GuidedShapes <= b.RandomShapes {
		t.Errorf("guided %d shapes vs random %d: expected a strict win", b.GuidedShapes, b.RandomShapes)
	}
}
