// Command fixd-lint runs FixD's determinism-safety static analysis suite
// (internal/analysis): detwall, detmaprange, detgoroutine, kindswitch,
// and scrollrecord.
//
// Usage:
//
//	fixd-lint [-C dir] [-json] [packages...]
//
// Packages default to ./... relative to the module root (found by walking
// up from -C, default the working directory, to the nearest go.mod).
// Patterns are ./... style recursive patterns or plain directories;
// naming a testdata fixture directory runs that fixture's analyzer, which
// is how CI asserts the suite still fails on seeded-dirty code.
//
// Exit status: 0 clean, 1 diagnostics found, 2 operational error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("fixd-lint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON diagnostics")
	chdir := fs.String("C", ".", "directory to resolve the module root from")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := findModuleRoot(*chdir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fixd-lint:", err)
		return 2
	}
	suite, err := analysis.NewSuite(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fixd-lint:", err)
		return 2
	}
	diags, err := suite.Run(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fixd-lint:", err)
		return 2
	}
	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, root, diags); err != nil {
			fmt.Fprintln(os.Stderr, "fixd-lint:", err)
			return 2
		}
	} else {
		analysis.WriteText(os.Stdout, root, diags)
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "fixd-lint: %d issue(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// findModuleRoot walks up from dir to the nearest directory holding a
// go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}
