package main

import "testing"

// TestExitCodes pins the CLI contract CI depends on: 0 on clean trees,
// 1 when diagnostics are found (the negative smoke on the dirty
// fixture), 2 on operational errors.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"dirty fixture fails", []string{"-C", "../..", "./internal/analysis/testdata/src/detwall/dirty"}, 1},
		{"clean fixture passes", []string{"-C", "../..", "./internal/analysis/testdata/src/detwall/clean"}, 0},
		{"dirty fixture fails with -json", []string{"-json", "-C", "../..", "./internal/analysis/testdata/src/kindswitch/dirty"}, 1},
		{"bad flag is operational error", []string{"-definitely-not-a-flag"}, 2},
		{"missing directory is operational error", []string{"-C", "../..", "./no/such/dir"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := run(tc.args); got != tc.want {
				t.Errorf("run(%v) = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}
