// fixd-demo narrates one complete FixD pipeline execution (paper Figs.
// 1-5) on the buggy two-phase-commit workload:
//
//	detect  — a participant's binding NO vote is contradicted by a
//	          timeout-commit from the buggy coordinator (local fault);
//	rollback — the coordinator assembles a consistent checkpoint line;
//	investigate — ModelD explores delivery/timer orders from that line and
//	          prints the trails that violate 2PC atomicity;
//	heal    — the corrected coordinator is injected by dynamic update and
//	          the run resumes from the line.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/fixd"
	"repro/internal/apps"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	maxStates := flag.Int("max-states", 50_000, "investigation state budget")
	flag.Parse()
	if err := run(*seed, *maxStates, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fixd-demo:", err)
		os.Exit(1)
	}
}

// run executes the narrated pipeline; the demo is test-invokable with a
// small state budget.
func run(seed int64, maxStates int, out io.Writer) error {
	bugCfg := apps.TwoPCConfig{
		Participants: 2, NoVoters: []int{1}, SlowVoters: []int{1},
		Timeout: 10, VoteDelay: 100, Buggy: true,
	}
	fixCfg := bugCfg
	fixCfg.Buggy = false

	fixedFactories := map[string]func() fixd.Machine{}
	for id := range apps.NewTwoPC(fixCfg) {
		id := id
		fixedFactories[id] = func() fixd.Machine { return apps.NewTwoPC(fixCfg)[id] }
	}

	sys := fixd.New(fixd.Config{
		Seed: seed, MinLatency: 1, MaxLatency: 2, MaxSteps: 5000,
		CICheckpoint: true,
	})
	for id := range apps.NewTwoPC(bugCfg) {
		id := id
		sys.Add(id, func() fixd.Machine { return apps.NewTwoPC(bugCfg)[id] })
	}
	sys.AddInvariant(apps.TwoPCAtomicity())
	sys.Protect(fixd.ProtectOptions{
		StopAtFirstViolation: true,
		MaxStates:            maxStates,
		MaxDepth:             40,
		AutoHeal:             &fixd.Program{Version: "2pc-fixed", Factories: fixedFactories},
	})

	fmt.Fprintln(out, "[ run ] starting buggy two-phase commit under FixD protection ...")
	sys.Run()
	resp := sys.Response()
	if resp == nil {
		fmt.Fprintln(out, "[ run ] completed without faults — nothing to do")
		return nil
	}

	fmt.Fprintf(out, "[detect] %s reported: %s (t=%d, clock=%s)\n",
		resp.Fault.Proc, resp.Fault.Desc, resp.Fault.Time, resp.Fault.Clock)
	fmt.Fprintf(out, "[rollbk] consistent recovery line over %d checkpoints, %d protocol messages\n",
		len(resp.Line), resp.Messages)
	procs := make([]string, 0, len(resp.Line))
	for proc := range resp.Line {
		procs = append(procs, proc)
	}
	sort.Strings(procs)
	for _, proc := range procs {
		fmt.Fprintf(out, "         %-8s -> %s @ %s\n", proc, resp.Line[proc], resp.LineClocks[proc])
	}

	inv := resp.Investigation
	fmt.Fprintf(out, "[invest] explored %d states / %d transitions (depth <= %d, truncated=%v)\n",
		inv.StatesExplored, inv.Transitions, inv.MaxDepth, inv.Truncated)
	if !inv.Violating() {
		return errors.New("investigation found no violation trails")
	}
	trail := inv.ShortestTrail()
	fmt.Fprintf(out, "[invest] shortest trail to %q (%d steps):\n", trail.Invariant, len(trail.Steps))
	for i, step := range trail.Steps {
		fmt.Fprintf(out, "         %2d. %s\n", i+1, step)
	}

	if resp.Heal == nil {
		fmt.Fprintln(out, "[ heal ] skipped (no recovery line)")
		return nil
	}
	fmt.Fprintf(out, "[ heal ] dynamic update to %q: typeSafe=%v invariants=%v verified=%v\n",
		resp.Heal.Version, resp.Heal.TypeSafe, resp.Heal.InvariantsOK, resp.Heal.Verified())
	if !resp.Heal.Verified() {
		for _, f := range resp.Heal.Failures {
			fmt.Fprintf(out, "         refused: %s\n", f)
		}
		return errors.New("heal refused")
	}
	fmt.Fprintln(out, "[resume] continuing from the recovery line with the corrected program ...")
	sys.Resume()
	if bad := sys.CheckInvariants(); len(bad) > 0 {
		return fmt.Errorf("invariants still violated after resume: %v", bad)
	}
	fmt.Fprintln(out, "[ done ] system recovered; all invariants hold")
	return nil
}
