// fixd-demo narrates one complete FixD pipeline execution (paper Figs.
// 1-5) on the buggy two-phase-commit workload:
//
//	detect  — a participant's binding NO vote is contradicted by a
//	          timeout-commit from the buggy coordinator (local fault);
//	rollback — the coordinator assembles a consistent checkpoint line;
//	investigate — ModelD explores delivery/timer orders from that line and
//	          prints the trails that violate 2PC atomicity;
//	heal    — the corrected coordinator is injected by dynamic update and
//	          the run resumes from the line.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/fixd"
	"repro/internal/apps"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	maxStates := flag.Int("max-states", 50_000, "investigation state budget")
	flag.Parse()

	bugCfg := apps.TwoPCConfig{
		Participants: 2, NoVoters: []int{1}, SlowVoters: []int{1},
		Timeout: 10, VoteDelay: 100, Buggy: true,
	}
	fixCfg := bugCfg
	fixCfg.Buggy = false

	fixedFactories := map[string]func() fixd.Machine{}
	for id := range apps.NewTwoPC(fixCfg) {
		id := id
		fixedFactories[id] = func() fixd.Machine { return apps.NewTwoPC(fixCfg)[id] }
	}

	sys := fixd.New(fixd.Config{
		Seed: *seed, MinLatency: 1, MaxLatency: 2, MaxSteps: 5000,
		CICheckpoint: true,
	})
	for id := range apps.NewTwoPC(bugCfg) {
		id := id
		sys.Add(id, func() fixd.Machine { return apps.NewTwoPC(bugCfg)[id] })
	}
	sys.AddInvariant(apps.TwoPCAtomicity())
	sys.Protect(fixd.ProtectOptions{
		StopAtFirstViolation: true,
		MaxStates:            *maxStates,
		MaxDepth:             40,
		AutoHeal:             &fixd.Program{Version: "2pc-fixed", Factories: fixedFactories},
	})

	fmt.Println("[ run ] starting buggy two-phase commit under FixD protection ...")
	sys.Run()
	resp := sys.Response()
	if resp == nil {
		fmt.Println("[ run ] completed without faults — nothing to do")
		return
	}

	fmt.Printf("[detect] %s reported: %s (t=%d, clock=%s)\n",
		resp.Fault.Proc, resp.Fault.Desc, resp.Fault.Time, resp.Fault.Clock)
	fmt.Printf("[rollbk] consistent recovery line over %d checkpoints, %d protocol messages\n",
		len(resp.Line), resp.Messages)
	for proc, ck := range resp.Line {
		fmt.Printf("         %-8s -> %s @ %s\n", proc, ck, resp.LineClocks[proc])
	}

	inv := resp.Investigation
	fmt.Printf("[invest] explored %d states / %d transitions (depth <= %d, truncated=%v)\n",
		inv.StatesExplored, inv.Transitions, inv.MaxDepth, inv.Truncated)
	if !inv.Violating() {
		fmt.Println("[invest] no violation trails found")
		os.Exit(1)
	}
	trail := inv.ShortestTrail()
	fmt.Printf("[invest] shortest trail to %q (%d steps):\n", trail.Invariant, len(trail.Steps))
	for i, step := range trail.Steps {
		fmt.Printf("         %2d. %s\n", i+1, step)
	}

	if resp.Heal == nil {
		fmt.Println("[ heal ] skipped (no recovery line)")
		return
	}
	fmt.Printf("[ heal ] dynamic update to %q: typeSafe=%v invariants=%v verified=%v\n",
		resp.Heal.Version, resp.Heal.TypeSafe, resp.Heal.InvariantsOK, resp.Heal.Verified())
	if !resp.Heal.Verified() {
		for _, f := range resp.Heal.Failures {
			fmt.Printf("         refused: %s\n", f)
		}
		return
	}
	fmt.Println("[resume] continuing from the recovery line with the corrected program ...")
	sys.Resume()
	if bad := sys.CheckInvariants(); len(bad) > 0 {
		fmt.Printf("[resume] invariants still violated: %v\n", bad)
		os.Exit(1)
	}
	fmt.Println("[ done ] system recovered; all invariants hold")
}
