package main

import (
	"strings"
	"testing"
)

// TestDemoRuns invokes the full narrated pipeline with the default seed —
// the same execution `fixd-demo` performs — and checks every stage
// banner. (The demo finishes in milliseconds; no wall-clock assertion, as
// those flake on contended CI runners.)
func TestDemoRuns(t *testing.T) {
	var out strings.Builder
	if err := run(1, 50_000, &out); err != nil {
		t.Fatalf("demo failed: %v\n%s", err, out.String())
	}
	for _, marker := range []string{"[detect]", "[rollbk]", "[invest]", "[ heal ]", "[resume]", "[ done ]"} {
		if !strings.Contains(out.String(), marker) {
			t.Errorf("output missing %s stage:\n%s", marker, out.String())
		}
	}
}

// TestDemoDeterministic: the narrated run is reproducible byte-for-byte.
func TestDemoDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := run(1, 20_000, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(1, 20_000, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two runs with the same seed printed different narratives")
	}
}
