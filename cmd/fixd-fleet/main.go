// fixd-fleet runs the distributed chaos-search fleet: a coordinator that
// owns the seeded candidate frontier and leases evaluation batches to
// stateless workers over a length-prefixed TCP protocol (see
// internal/fleet for the frame layout). For a fixed (seed, budget) the
// fleet's report is byte-identical to the in-process `fixd-bench` search
// at any worker count and across worker crashes.
//
// Usage:
//
//	fixd-fleet -local 4                      # all-in-one: coordinator + 4 loopback workers
//	fixd-fleet -coordinate -addr :9940       # coordinator only; workers join remotely
//	fixd-fleet -work -join host:9940         # one stateless worker
//
// Shared search knobs: -seed, -budget, -buggy, -apps a,b,c, -check-every.
// Coordinator knobs: -journal path (durable frontier; restart resumes
// without re-executing), -lease-timeout, -no-local-fallback. The report is
// printed as a summary table, or as full JSON with -json.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/chaos"
	"repro/internal/fleet"
)

func main() {
	var (
		coordinate = flag.Bool("coordinate", false, "run a coordinator and wait for workers to join")
		work       = flag.Bool("work", false, "run a stateless worker; requires -join")
		local      = flag.Int("local", 0, "all-in-one mode: coordinator plus this many loopback workers")
		join       = flag.String("join", "", "coordinator address a worker dials")
		addr       = flag.String("addr", "127.0.0.1:0", "coordinator listen address")
		name       = flag.String("name", "", "worker name reported in its hello")
		slots      = flag.Int("slots", 1, "parallel lease sessions per worker")

		seed       = flag.Int64("seed", 1, "master search seed")
		budget     = flag.Int("budget", 48, "schedule executions per application")
		buggy      = flag.Bool("buggy", false, "search the seeded-bug app variants")
		appList    = flag.String("apps", "", "comma-separated app names (default: all registered)")
		checkEvery = flag.Uint64("check-every", 0, "early-exit invariant cadence (0 = quiescence only)")
		shrink     = flag.Int("shrink-budget", 0, "shrink budget per distinct failure (0 = default, <0 disables)")

		journal      = flag.String("journal", "", "JSONL frontier journal path (restart resumes from it)")
		leaseTimeout = flag.Duration("lease-timeout", 15*time.Second, "how long a worker may hold a lease")
		noFallback   = flag.Bool("no-local-fallback", false, "never evaluate leases on the coordinator")
		asJSON       = flag.Bool("json", false, "print the full report as JSON")
	)
	flag.Parse()

	modes := 0
	for _, m := range []bool{*coordinate, *work, *local > 0} {
		if m {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "fixd-fleet: pick exactly one mode: -coordinate, -work -join addr, or -local n")
		flag.Usage()
		os.Exit(2)
	}

	if *work {
		if *join == "" {
			fmt.Fprintln(os.Stderr, "fixd-fleet: -work requires -join addr")
			os.Exit(2)
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		w := &fleet.Worker{Join: *join, Name: *name, Slots: *slots}
		if err := w.Run(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "fixd-fleet:", err)
			os.Exit(1)
		}
		return
	}

	scfg := chaos.SearchConfig{
		Seed: *seed, Budget: *budget, Buggy: *buggy,
		CheckEvery: *checkEvery, ShrinkBudget: *shrink,
	}
	if *appList != "" {
		var specs []apps.AppSpec
		for _, nm := range strings.Split(*appList, ",") {
			spec, err := apps.Lookup(strings.TrimSpace(nm))
			if err != nil {
				fmt.Fprintln(os.Stderr, "fixd-fleet:", err)
				os.Exit(2)
			}
			specs = append(specs, spec)
		}
		scfg.Apps = specs
	}
	cfg := fleet.Config{
		Search: scfg, Addr: *addr, Journal: *journal,
		LeaseTimeout: *leaseTimeout, NoLocalFallback: *noFallback,
	}

	var (
		rep *chaos.SearchReport
		err error
	)
	if *local > 0 {
		cfg.Workers = *local
		rep, err = fleet.Search(cfg)
	} else {
		rep, err = runCoordinator(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fixd-fleet:", err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "fixd-fleet:", err)
			os.Exit(1)
		}
		return
	}
	printSummary(rep)
}

// runCoordinator runs coordinator-only mode: bind, announce the address,
// and drive the search with whatever workers join.
func runCoordinator(cfg fleet.Config) (*chaos.SearchReport, error) {
	coord, err := fleet.NewCoordinator(cfg)
	if err != nil {
		return nil, err
	}
	defer coord.Close()
	fmt.Fprintf(os.Stderr, "fixd-fleet: coordinating on %s (join with: fixd-fleet -work -join %s)\n",
		coord.Addr(), coord.Addr())
	if n := coord.Recovered(); n > 0 {
		fmt.Fprintf(os.Stderr, "fixd-fleet: journal restored %d results; they will not be re-executed\n", n)
	}
	rep, err := coord.Run()
	if err != nil {
		return nil, err
	}
	reissues, locals := coord.Stats()
	fmt.Fprintf(os.Stderr, "fixd-fleet: done (%d leases reissued, %d evaluated locally)\n", reissues, locals)
	return rep, nil
}

// printSummary prints the per-app coverage and failure table.
func printSummary(rep *chaos.SearchReport) {
	fmt.Printf("fleet search  seed=%d budget=%d buggy=%v\n", rep.Seed, rep.Budget, rep.Buggy)
	fmt.Printf("%-10s %6s %7s %7s %7s %9s\n", "app", "execs", "corpus", "shapes", "digests", "failures")
	for _, a := range rep.Apps {
		fmt.Printf("%-10s %6d %7d %7d %7d %9d\n",
			a.App, a.Executions, len(a.Corpus), a.DistinctShapes, a.DistinctDigests, len(a.Failures))
	}
	shapes, digests := rep.Totals()
	fmt.Printf("%-10s %6s %7s %7d %7d %9d\n", "total", "", "", shapes, digests, len(rep.Failures()))
}
