package main

import (
	"strings"
	"testing"

	"repro/internal/scroll"
)

// TestDump exercises the decode-and-print path against a real durable
// scroll written to a temporary directory.
func TestDump(t *testing.T) {
	dir := t.TempDir()
	s, err := scroll.OpenDurable("worker", dir)
	if err != nil {
		t.Fatal(err)
	}
	records := []scroll.Record{
		{Kind: scroll.KindSend, MsgID: "m1", Peer: "other", Payload: []byte("hello"), Lamport: 1},
		{Kind: scroll.KindRecv, MsgID: "m2", Peer: "other", Payload: []byte("world"), Lamport: 2},
		{Kind: scroll.KindRandom, Payload: []byte("12345678"), Lamport: 3},
	}
	for _, r := range records {
		if _, err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := scroll.OpenDurable("worker", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()

	var out strings.Builder
	dump(&out, []*scroll.Scroll{reopened}, false, "")
	got := out.String()
	if !strings.Contains(got, "--- worker (3 records) ---") {
		t.Errorf("missing header:\n%s", got)
	}
	if !strings.Contains(got, `"hello"`) || !strings.Contains(got, `"world"`) {
		t.Errorf("missing payloads:\n%s", got)
	}

	out.Reset()
	dump(&out, []*scroll.Scroll{reopened}, true, "recv")
	if got := out.String(); !strings.Contains(got, `"world"`) || strings.Contains(got, `"hello"`) {
		t.Errorf("kind filter broken:\n%s", got)
	}
}
