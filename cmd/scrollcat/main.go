// scrollcat inspects durable Scroll logs (paper §3.1): it decodes the
// WAL-backed records of one or more process scrolls and prints them,
// either per process or merged into the global Lamport order.
//
// Usage:
//
//	scrollcat dir1 [dir2 ...]        # per-directory dump
//	scrollcat -merge dir1 dir2 ...   # single, globally ordered stream
//	scrollcat -kind recv dir1        # filter by record kind
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/scroll"
)

func main() {
	merge := flag.Bool("merge", false, "merge all scrolls into global Lamport order")
	kindFilter := flag.String("kind", "", "only show records of this kind (recv|send|random|time|env|ckpt|fault|custom)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: scrollcat [-merge] [-kind K] dir [dir...]")
		os.Exit(2)
	}

	var scrolls []*scroll.Scroll
	for _, dir := range flag.Args() {
		proc := filepath.Base(dir)
		s, err := scroll.OpenDurable(proc, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scrollcat: %s: %v\n", dir, err)
			os.Exit(1)
		}
		scrolls = append(scrolls, s)
	}
	defer func() {
		for _, s := range scrolls {
			s.Close()
		}
	}()

	dump(os.Stdout, scrolls, *merge, *kindFilter)
}

// dump prints the scrolls, merged into global Lamport order or grouped
// per process, optionally filtered by record kind.
func dump(out io.Writer, scrolls []*scroll.Scroll, merge bool, kindFilter string) {
	show := func(r scroll.Record) {
		if kindFilter != "" && r.Kind.String() != strings.ToLower(kindFilter) {
			return
		}
		payload := string(r.Payload)
		if len(payload) > 40 {
			payload = payload[:37] + "..."
		}
		fmt.Fprintf(out, "%8d  %-10s %-6s seq=%-5d msg=%-8s peer=%-10s clock=%s %q\n",
			r.Lamport, r.Proc, r.Kind, r.Seq, r.MsgID, r.Peer, r.Clock, payload)
	}

	if merge {
		for _, r := range scroll.Merge(scrolls...) {
			show(r)
		}
		return
	}
	for _, s := range scrolls {
		fmt.Fprintf(out, "--- %s (%d records) ---\n", s.Proc(), s.Len())
		for _, r := range s.Records() {
			show(r)
		}
	}
}
