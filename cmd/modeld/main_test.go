package main

import (
	"testing"

	"repro/internal/modeld"
)

// TestBuiltinModels exercises the CLI's built-in model constructors: the
// correct mutex verifies clean, the buggy one yields a violation trail.
func TestBuiltinModels(t *testing.T) {
	root, engine := buildMutex(3, false)
	res := engine.Explore(root, modeld.Options{Strategy: modeld.BFS, MaxStates: 100_000})
	if len(res.Violations) != 0 || res.Truncated {
		t.Errorf("correct mutex: %d violations, truncated=%v", len(res.Violations), res.Truncated)
	}

	root, engine = buildMutex(2, true)
	res = engine.Explore(root, modeld.Options{Strategy: modeld.BFS, MaxStates: 100_000})
	if len(res.Violations) == 0 {
		t.Error("buggy mutex: violation not found")
	}

	root, engine = buildCounter()
	res = engine.Explore(root, modeld.Options{Strategy: modeld.BFS, MaxStates: 100_000})
	if res.StatesVisited == 0 {
		t.Error("counter model explored nothing")
	}
}
