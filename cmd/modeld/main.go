// modeld is the standalone ModelD model checker CLI (paper §4.3, Fig. 7).
// It explores one of the built-in guarded-command demonstration models and
// prints the exploration statistics and any violation trails.
//
// Usage:
//
//	modeld -model mutex -n 4 -strategy bfs
//	modeld -model mutex-buggy -n 3 -strategy heuristic -first
//	modeld -model counter -max-states 100000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/guard"
	"repro/internal/modeld"
)

func main() {
	model := flag.String("model", "mutex", "built-in model: mutex | mutex-buggy | counter")
	n := flag.Int("n", 3, "number of processes in the model")
	strategy := flag.String("strategy", "bfs", "search order: bfs | dfs | heuristic | random | single")
	maxStates := flag.Int("max-states", 1_000_000, "state budget")
	maxDepth := flag.Int("max-depth", 0, "depth bound (0 = unbounded)")
	first := flag.Bool("first", false, "stop at the first violation")
	seed := flag.Int64("seed", 1, "seed for the random strategy")
	flag.Parse()

	strat, ok := map[string]modeld.Strategy{
		"bfs": modeld.BFS, "dfs": modeld.DFS, "heuristic": modeld.Heuristic,
		"random": modeld.RandomWalk, "single": modeld.SinglePath,
	}[*strategy]
	if !ok {
		fmt.Fprintf(os.Stderr, "modeld: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	var (
		root   modeld.State
		engine *modeld.Engine
	)
	switch *model {
	case "mutex":
		root, engine = buildMutex(*n, false)
	case "mutex-buggy":
		root, engine = buildMutex(*n, true)
	case "counter":
		root, engine = buildCounter()
	default:
		fmt.Fprintf(os.Stderr, "modeld: unknown model %q\n", *model)
		os.Exit(2)
	}

	opts := modeld.Options{
		Strategy:             strat,
		MaxStates:            *maxStates,
		MaxDepth:             *maxDepth,
		StopAtFirstViolation: *first,
		Seed:                 *seed,
		CheckDeadlock:        true,
	}
	if strat == modeld.Heuristic {
		opts.Heuristic = func(s modeld.State, depth int) int { return depth } // BFS-like default
	}
	res := engine.Explore(root, opts)

	fmt.Printf("model=%s n=%d strategy=%s\n", *model, *n, *strategy)
	fmt.Printf("states=%d transitions=%d maxDepth=%d truncated=%v frontierPeak=%d graphBytes=%d\n",
		res.StatesVisited, res.Transitions, res.MaxDepthSeen, res.Truncated, res.FrontierPeak, res.GraphBytes)
	fmt.Printf("deadlocks=%d violations=%d\n", len(res.Deadlocks), len(res.Violations))
	if v := res.ShortestViolation(); v != nil {
		fmt.Printf("shortest violation: invariant=%q depth=%d\n", v.Invariant, v.Depth)
		for i, step := range v.Trail {
			fmt.Printf("  %3d. %s\n", i+1, step.Action)
		}
	}
}

// buildMutex builds the n-process flag/turn mutex model; buggy adds a
// barge-in action that ignores the turn.
func buildMutex(n int, buggy bool) (modeld.State, *modeld.Engine) {
	m := guard.NewModel().Init("turn", 0)
	for i := 0; i < n; i++ {
		i := i
		cs := fmt.Sprintf("cs%d", i)
		w := fmt.Sprintf("w%d", i)
		m.Init(cs, 0)
		m.Init(w, 0)
		m.Action(fmt.Sprintf("p%d-enter", i)).
			When(func(v guard.Vars) bool { return v.Get("turn") == int64(i) && v.Get(cs) == 0 }).
			Do(func(v guard.Vars) { v.Set(cs, 1) })
		if buggy {
			m.Action(fmt.Sprintf("p%d-barge", i)).
				When(func(v guard.Vars) bool { return v.Get(w) >= 2 && v.Get(cs) == 0 }).
				Do(func(v guard.Vars) { v.Set(cs, 1) })
		}
		m.Action(fmt.Sprintf("p%d-leave", i)).
			When(func(v guard.Vars) bool { return v.Get(cs) == 1 }).
			Do(func(v guard.Vars) {
				v.Set(cs, 0)
				v.Set("turn", (int64(i)+1)%int64(n))
			})
		m.Action(fmt.Sprintf("p%d-work", i)).
			When(func(v guard.Vars) bool { return v.Get(w) < 2 }).
			Do(func(v guard.Vars) { v.Set(w, v.Get(w)+1) })
	}
	m.Invariant("mutex", func(v guard.Vars) bool {
		in := 0
		for i := 0; i < n; i++ {
			in += int(v.Get(fmt.Sprintf("cs%d", i)))
		}
		return in <= 1
	})
	return m.Build()
}

// buildCounter is a trivial single-variable model for smoke testing.
func buildCounter() (modeld.State, *modeld.Engine) {
	m := guard.NewModel().Init("n", 0)
	m.Action("inc").When(func(v guard.Vars) bool { return v.Get("n") < 64 }).
		Do(func(v guard.Vars) { v.Set("n", v.Get("n")+1) })
	m.Action("dec").When(func(v guard.Vars) bool { return v.Get("n") > 0 }).
		Do(func(v guard.Vars) { v.Set("n", v.Get("n")-1) })
	m.Invariant("bounded", func(v guard.Vars) bool { return v.Get("n") <= 64 })
	return m.Build()
}
